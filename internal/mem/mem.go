// Package mem models one J-Machine node's two-level memory.
//
// Each node pairs the MDP's 4K-word on-chip SRAM (internal memory, 2-cycle
// operand access) with 1 MByte of ECC DRAM (external memory, ~6-cycle
// latency). The two live in a single word address space: internal memory
// at [0, ImemWords) and external memory above it. Every word carries a
// 4-bit tag, so presence tags (cfut/fut) are first-class in memory exactly
// as in the register file.
//
// Local memory is referenced via segment descriptors that specify the
// base and length of each memory object; indexed accesses are bounds
// checked against the descriptor. System code may also use raw integer
// addresses (unchecked), which is how the tuned assembly applications
// address large arrays.
//
// The backing store is paged and lazily materialized: a nil page reads as
// integer zero, and pages are only allocated on the first non-zero write.
// Programs execute from the assembled image held machine-wide, so a node
// that only touches a few hundred data words costs a few pages rather
// than the full 70K-word image — the difference between a 16K-node mesh
// fitting in memory or not.
package mem

import (
	"errors"
	"fmt"

	"jmachine/internal/word"
)

// Defaults mirror the prototype: a 4K-word SRAM and 1 MByte of DRAM.
// The DRAM default here is smaller than the hardware's so that 512-node
// simulations stay cheap; paper-scale memory is a Config away.
const (
	DefaultImemWords = 4096
	DefaultEmemWords = 65536
)

// Page geometry. 1K words (8 KiB) per page keeps the page table at 68
// pointers for the default 70K-word node while amortizing allocation.
const (
	pageShift = 10
	pageWords = 1 << pageShift
	pageMask  = pageWords - 1
)

// Config sizes a node memory.
type Config struct {
	ImemWords int // on-chip SRAM words (0 = DefaultImemWords)
	EmemWords int // off-chip DRAM words (0 = DefaultEmemWords)
}

func (c Config) withDefaults() Config {
	if c.ImemWords == 0 {
		c.ImemWords = DefaultImemWords
	}
	if c.EmemWords == 0 {
		c.EmemWords = DefaultEmemWords
	}
	return c
}

// ErrBounds is returned for accesses outside the node's address space or
// outside a segment descriptor's extent.
var ErrBounds = errors.New("mem: address out of bounds")

// Memory is one node's storage.
type Memory struct {
	pages     [][]word.Word // fixed page table; a nil page reads as word.Int(0)
	size      int           // addressable words
	imemWords int
}

// New allocates a node memory. All words start as integer zero; no page
// is materialized until written.
func New(cfg Config) *Memory {
	cfg = cfg.withDefaults()
	size := cfg.ImemWords + cfg.EmemWords
	return &Memory{
		pages:     make([][]word.Word, (size+pageWords-1)/pageWords),
		size:      size,
		imemWords: cfg.ImemWords,
	}
}

// Size returns the total number of addressable words.
func (m *Memory) Size() int { return m.size }

// ImemWords returns the size of internal memory; external memory begins
// at this address.
func (m *Memory) ImemWords() int { return m.imemWords }

// IsInternal reports whether addr falls in on-chip SRAM. Access cost
// modelling in the processor core keys off this.
func (m *Memory) IsInternal(addr int32) bool {
	return addr >= 0 && int(addr) < m.imemWords
}

// Read returns the word at addr.
func (m *Memory) Read(addr int32) (word.Word, error) {
	if addr < 0 || int(addr) >= m.size {
		return 0, ErrBounds
	}
	pg := m.pages[addr>>pageShift]
	if pg == nil {
		return 0, nil
	}
	return pg[addr&pageMask], nil
}

// Write stores w at addr, replacing both data and tag. Writing integer
// zero to an unmaterialized page is a no-op — the page stays lazy.
func (m *Memory) Write(addr int32, w word.Word) error {
	if addr < 0 || int(addr) >= m.size {
		return ErrBounds
	}
	m.set(int(addr), w)
	return nil
}

// set stores w at a bounds-checked word index, materializing the page
// only for non-zero words.
func (m *Memory) set(addr int, w word.Word) {
	pg := m.pages[addr>>pageShift]
	if pg == nil {
		if w == 0 {
			return
		}
		pg = make([]word.Word, pageWords)
		m.pages[addr>>pageShift] = pg
	}
	pg[addr&pageMask] = w
}

// get returns the word at a bounds-checked word index.
func (m *Memory) get(addr int) word.Word {
	pg := m.pages[addr>>pageShift]
	if pg == nil {
		return 0
	}
	return pg[addr&pageMask]
}

// Load copies ws into memory starting at addr (host/loader operation,
// free of simulated cost).
func (m *Memory) Load(addr int32, ws []word.Word) error {
	if addr < 0 || int(addr)+len(ws) > m.size {
		return fmt.Errorf("%w: load [%d,%d) into %d words", ErrBounds, addr, int(addr)+len(ws), m.size)
	}
	for i, w := range ws {
		m.set(int(addr)+i, w)
	}
	return nil
}

// FillCfut marks n words starting at addr as awaiting values.
func (m *Memory) FillCfut(addr int32, n int) error {
	if addr < 0 || int(addr)+n > m.size {
		return ErrBounds
	}
	for i := 0; i < n; i++ {
		m.set(int(addr)+i, word.Cfut(0))
	}
	return nil
}

// HeapBytes estimates the heap footprint of this memory's backing store:
// the page table plus every materialized page. Used by the mesh-scaling
// probe's bytes/node report.
func (m *Memory) HeapBytes() int64 {
	b := int64(len(m.pages)) * 8
	for _, pg := range m.pages {
		if pg != nil {
			b += pageWords * 8
		}
	}
	return b
}

// Segment descriptors.
//
// An ADDR-tagged word encodes a memory object: base address in the low 20
// bits and object length (words) in the high 12 bits. Objects may be
// relocated at will — heap compaction only requires re-ENTERing the
// descriptor under the object's global name.

const (
	segBaseBits = 20
	segBaseMask = 1<<segBaseBits - 1
	// SegMaxLen is the largest object a descriptor can describe.
	SegMaxLen = 1<<12 - 1
	// SegMaxBase is the largest base address a descriptor can hold.
	SegMaxBase = segBaseMask
)

// Seg builds a segment descriptor word.
func Seg(base int32, length int) word.Word {
	return word.New(word.TagAddr, int32(length)<<segBaseBits|base&segBaseMask)
}

// SegBase extracts the base address of a descriptor.
func SegBase(w word.Word) int32 { return w.Data() & segBaseMask }

// SegLen extracts the length of a descriptor.
func SegLen(w word.Word) int { return int(w.UData() >> segBaseBits) }

// SegAddr resolves an indexed access through a descriptor, enforcing
// bounds: reading slot i of an object of length n faults unless 0 ≤ i < n.
func SegAddr(desc word.Word, index int32) (int32, error) {
	if index < 0 || int(index) >= SegLen(desc) {
		return 0, fmt.Errorf("%w: index %d in segment of %d", ErrBounds, index, SegLen(desc))
	}
	return SegBase(desc) + index, nil
}
