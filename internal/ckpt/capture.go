package ckpt

import (
	"fmt"

	"jmachine/internal/ckpt/wire"
	"jmachine/internal/machine"
)

// Saver is an attached simulation layer that owns checkpoint state.
// rt.Runtime, rt.Reliable, and chaos.Injector satisfy it structurally;
// they import only the wire codec, never this package.
type Saver interface {
	// CkptName names the layer's section; names must be unique per
	// snapshot and double as a configuration check — a checkpoint only
	// restores into a process with the identical layer stack.
	CkptName() string
	CkptSave(*wire.Encoder)
	CkptRestore(*wire.Decoder) error
}

// machineSection is the mandatory first section's name.
const machineSection = "machine"

// Capture snapshots the machine and every extra layer. It must run
// between cycles or from a cycle hook; the snapshot represents
// m.SnapshotCycle(), and restoring it reproduces the machine's
// StateDigest exactly.
func Capture(m *machine.Machine, extras ...Saver) *Snapshot {
	snap := &Snapshot{}
	e := &wire.Encoder{}
	m.SaveState(e)
	snap.Sections = append(snap.Sections, Section{Name: machineSection, Data: e.Bytes()})
	for _, s := range extras {
		e := &wire.Encoder{}
		s.CkptSave(e)
		snap.Sections = append(snap.Sections, Section{Name: s.CkptName(), Data: e.Bytes()})
	}
	return snap
}

// Restore loads a snapshot into a freshly constructed machine with the
// same configuration, program, and attached layers as the capturing
// process. It must run after all layers are attached and any workload
// start-up (memory image, initial threads, boot messages) has been
// applied, and before the run loop starts. The snapshot's section list
// must match the attached layers exactly.
func Restore(m *machine.Machine, snap *Snapshot, extras ...Saver) error {
	want := []string{machineSection}
	for _, s := range extras {
		want = append(want, s.CkptName())
	}
	got := snap.Names()
	if len(got) != len(want) {
		return fmt.Errorf("ckpt: checkpoint has sections %v, this process expects %v (layer stack mismatch)", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("ckpt: checkpoint has sections %v, this process expects %v (layer stack mismatch)", got, want)
		}
	}
	d := wire.NewDecoder(snap.Sections[0].Data)
	if err := m.RestoreState(d); err != nil {
		return err
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("ckpt: machine section has %d trailing bytes", d.Remaining())
	}
	for i, s := range extras {
		d := wire.NewDecoder(snap.Sections[i+1].Data)
		if err := s.CkptRestore(d); err != nil {
			return fmt.Errorf("ckpt: section %q: %w", s.CkptName(), err)
		}
		if d.Remaining() != 0 {
			return fmt.Errorf("ckpt: section %q has %d trailing bytes", s.CkptName(), d.Remaining())
		}
	}
	return nil
}

// RestoreFile reads path and restores it into m.
func RestoreFile(path string, m *machine.Machine, extras ...Saver) error {
	snap, err := ReadFile(path)
	if err != nil {
		return err
	}
	return Restore(m, snap, extras...)
}

// Checkpointer periodically captures the machine to a file from a
// cycle hook, so a SIGKILL at any point leaves a valid checkpoint at
// most Every cycles old (WriteFile is atomic).
type Checkpointer struct {
	m      *machine.Machine
	path   string
	every  int64
	extras []Saver
	writes int
	err    error
}

// AttachWriter installs a periodic checkpointer writing to path every
// `every` cycles. It must be attached after every layer that
// contributes a section. The hook declares its next write as its event
// horizon, so fast-path runs step through (and capture) every
// checkpoint cycle instead of skipping them.
func AttachWriter(m *machine.Machine, path string, every int64, extras ...Saver) *Checkpointer {
	if every <= 0 {
		every = 1 << 16
	}
	c := &Checkpointer{m: m, path: path, every: every, extras: extras}
	m.AddCycleHook(c.tick, c.horizon) //jm:horizon next periodic checkpoint cycle bounds tick's next effect
	return c
}

func (c *Checkpointer) horizon(now int64) int64 {
	return (now/c.every + 1) * c.every
}

// tick writes a checkpoint at every multiple of the period. Host I/O
// failures are recorded (first one wins) and surfaced through Err —
// the simulation itself is unaffected.
func (c *Checkpointer) tick(cycle int64) {
	if cycle%c.every != 0 {
		return
	}
	if err := WriteFile(c.path, Capture(c.m, c.extras...)); err != nil {
		if c.err == nil {
			c.err = err
		}
		return
	}
	c.writes++
}

// WriteNow captures and writes a checkpoint immediately (between
// cycles; used for a final checkpoint at run end).
func (c *Checkpointer) WriteNow() error {
	if err := WriteFile(c.path, Capture(c.m, c.extras...)); err != nil {
		return err
	}
	c.writes++
	return nil
}

// Writes returns how many checkpoints have been written.
func (c *Checkpointer) Writes() int { return c.writes }

// Err returns the first checkpoint-write failure, if any.
func (c *Checkpointer) Err() error { return c.err }
