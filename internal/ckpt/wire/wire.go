// Package wire is the primitive binary codec underneath the checkpoint
// format (internal/ckpt): little-endian fixed-width integers plus
// length-prefixed byte strings, written into a growing buffer and read
// back through a sticky-error decoder.
//
// The package is a leaf — stdlib only — so every state-owning package
// (machine, network, mdp, rt, chaos, ...) can implement its own
// SaveState/RestoreState against it without import cycles.
//
// Decoding is hardened for untrusted input: reads past the end of the
// buffer, and length prefixes larger than the bytes that remain, set a
// sticky error and return zero values instead of panicking. Callers
// check Err once per section and must additionally validate semantic
// ranges (counts, indices) before using decoded values.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated is the sticky decode error for reads past the end of
// the input.
var ErrTruncated = errors.New("wire: truncated input")

// Encoder appends primitive values to a byte buffer.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a bool as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// I32 appends an int32.
func (e *Encoder) I32(v int32) { e.U32(uint32(v)) }

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends an int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int (as int64; Decoder.Int rejects values outside the
// platform int range, which cannot occur for values this codec wrote).
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// Blob appends a u32 length prefix followed by the raw bytes.
func (e *Encoder) Blob(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Decoder reads primitive values back. Errors are sticky: after the
// first failed read every subsequent read returns a zero value, so a
// section's RestoreState can decode straight through and check Err
// once (plus semantic validation of counts and indices).
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps a byte slice for reading.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the sticky decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Fail sets the sticky error (used by callers for semantic-validation
// failures so one error path covers both truncation and bad values).
func (d *Decoder) Fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.err = ErrTruncated
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a one-byte bool; any value other than 0 or 1 is an error
// (fuzzed input must not decode to a "valid" snapshot by accident).
func (d *Decoder) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.Fail("wire: invalid bool byte")
		return false
	}
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// I32 reads an int32.
func (d *Decoder) I32() int32 { return int32(d.U32()) }

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int written by Encoder.Int.
func (d *Decoder) Int() int {
	v := d.I64()
	if int64(int(v)) != v {
		d.Fail("wire: int value %d out of range", v)
		return 0
	}
	return int(v)
}

// Count reads a non-negative element count and validates it against
// the bytes remaining (at least min bytes must follow per element), so
// corrupted counts fail cleanly instead of driving huge allocations.
func (d *Decoder) Count(minBytesPerElem int) int {
	n := d.Int()
	if n < 0 {
		d.Fail("wire: negative count %d", n)
		return 0
	}
	if minBytesPerElem > 0 && n > d.Remaining()/minBytesPerElem {
		d.Fail("wire: count %d exceeds remaining input", n)
		return 0
	}
	return n
}

// Blob reads a length-prefixed byte string (the returned slice aliases
// the decoder's buffer).
func (d *Decoder) Blob() []byte {
	n := d.U32()
	if int64(n) > int64(d.Remaining()) {
		d.Fail("wire: blob length %d exceeds remaining input", n)
		return nil
	}
	return d.take(int(n))
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.Blob()) }
