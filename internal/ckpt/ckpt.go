// Package ckpt is the deterministic checkpoint/restore layer: it
// captures a machine's complete simulation state (plus the attached
// system-software and fault-injection layers) into a versioned,
// checksummed snapshot, writes it crash-consistently, and restores it
// into a freshly constructed process so that continuing the run
// produces a final StateDigest byte-identical to a run that was never
// interrupted.
//
// A snapshot is a list of named sections. The "machine" section —
// cycle, watchdog, parking state, network, every node — is always
// first; each additional attached layer (the runtime, the reliable
// protocol, the chaos injector) contributes its own section through
// the Saver interface. At restore time the section names must match
// the attached layers exactly, which catches restoring into a
// differently configured process before any bytes are interpreted.
package ckpt

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"jmachine/internal/ckpt/wire"
)

// Magic identifies a checkpoint file and pins the container version;
// section payloads carry their own format tags.
const Magic = "JMCKPT1\n"

// maxSectionName bounds section-name frames (sanity check on decode).
const maxSectionName = 256

// Section is one named state blob.
type Section struct {
	Name string
	Data []byte
}

// Snapshot is a decoded checkpoint: an ordered list of sections.
type Snapshot struct {
	Sections []Section
}

// Find returns the named section's payload, or nil.
func (s *Snapshot) Find(name string) []byte {
	for i := range s.Sections {
		if s.Sections[i].Name == name {
			return s.Sections[i].Data
		}
	}
	return nil
}

// Names returns the section names in order.
func (s *Snapshot) Names() []string {
	names := make([]string, len(s.Sections))
	for i := range s.Sections {
		names[i] = s.Sections[i].Name
	}
	return names
}

// Encode renders the snapshot in the container format: magic, section
// count, then per section a name, a payload, and a CRC-32 over both.
// Every multi-byte integer is little-endian via the wire codec.
func (s *Snapshot) Encode() []byte {
	e := &wire.Encoder{}
	e.U32(uint32(len(s.Sections)))
	for i := range s.Sections {
		sec := &s.Sections[i]
		e.String(sec.Name)
		e.Blob(sec.Data)
		crc := crc32.ChecksumIEEE([]byte(sec.Name))
		crc = crc32.Update(crc, crc32.IEEETable, sec.Data)
		e.U32(crc)
	}
	return append([]byte(Magic), e.Bytes()...)
}

// Decode parses a checkpoint container. Truncated input, bad magic,
// mismatched checksums, and trailing garbage all return a descriptive
// error; Decode never panics on malformed input.
func Decode(b []byte) (*Snapshot, error) {
	if len(b) < len(Magic) || string(b[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("ckpt: not a checkpoint file (bad magic)")
	}
	d := wire.NewDecoder(b[len(Magic):])
	n := d.U32()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	snap := &Snapshot{}
	for i := uint32(0); i < n; i++ {
		name := d.String()
		data := d.Blob()
		crc := d.U32()
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("ckpt: section %d: %w", i, err)
		}
		if len(name) == 0 || len(name) > maxSectionName {
			return nil, fmt.Errorf("ckpt: section %d: invalid name length %d", i, len(name))
		}
		want := crc32.ChecksumIEEE([]byte(name))
		want = crc32.Update(want, crc32.IEEETable, data)
		if crc != want {
			return nil, fmt.Errorf("ckpt: section %q: checksum mismatch (file corrupted)", name)
		}
		// Blob aliases the input; copy so the snapshot owns its bytes.
		snap.Sections = append(snap.Sections, Section{Name: name, Data: append([]byte(nil), data...)})
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("ckpt: %d bytes of trailing garbage after last section", d.Remaining())
	}
	return snap, nil
}

// WriteFile writes the snapshot crash-consistently: the bytes go to a
// temp file in the destination directory, are fsynced, and are renamed
// over the destination atomically; the directory is fsynced so the
// rename survives a crash. A reader therefore sees either the old
// checkpoint or the complete new one, never a torn write.
func WriteFile(path string, s *Snapshot) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(s.Encode()); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: write %s: %w", tmp.Name(), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: sync %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: close %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if df, err := os.Open(dir); err == nil {
		df.Sync()
		df.Close()
	}
	return nil
}

// ReadFile loads and validates a checkpoint file.
func ReadFile(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	s, err := Decode(b)
	if err != nil {
		return nil, fmt.Errorf("%w (reading %s)", err, path)
	}
	return s, nil
}
