package ckpt_test

// Serialization-parity guard: a reflection walk over every struct
// reachable from the checkpointed roots (machine.Machine, rt.Runtime,
// rt.Reliable, chaos.Injector) asserts that each field is explicitly
// classified — either serialized by the checkpoint codec or listed as
// derived/scratch state with no digest effect. Adding a field to any
// of these structs fails this test until the codec (and the spec
// below) is updated, so the checkpoint format can never silently fall
// behind the simulation state.

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"jmachine/internal/chaos"
	"jmachine/internal/machine"
	"jmachine/internal/rt"
)

// paritySpec classifies one struct's fields.
type paritySpec struct {
	// serialized fields are written by the checkpoint codec (directly
	// or via a chained SaveState/CkptSave).
	serialized []string
	// derived fields are deliberately NOT serialized: rebuilt by the
	// constructor, recomputed on restore, host-side scratch, or
	// attached machinery that a fresh process re-creates. Every entry
	// here is a reviewed decision, not an omission.
	derived []string
}

// opaquePkgs stops the walk at foreign or immutable types: their
// internals are not simulation state owned by the checkpoint.
var opaquePkgs = []string{
	"sync",
	"sync/atomic",
	"math/rand",
	"os",
	"bufio",
	"time",
}

// opaqueTypes stops the walk at specific types treated as leaf values
// by the codec or as immutable run inputs covered by fingerprints.
var opaqueTypes = map[string]bool{
	"jmachine/internal/word.Word":         true, // codec leaf (tag+data)
	"jmachine/internal/asm.Program":       true, // immutable input, fingerprinted
	"jmachine/internal/machine.Config":    true, // construction input, dims verified
	"jmachine/internal/chaos.Event":       true, // immutable campaign input, fingerprinted
	"jmachine/internal/chaos.Campaign":    true, // immutable campaign input, fingerprinted
	"jmachine/internal/rt.ReliableConfig": true, // construction input, verified literally
	"jmachine/internal/rt.Policy":         true, // construction input (function table)
	"jmachine/internal/rt.ProgramInfo":    true, // derived from the program
}

var paritySpecs = map[string]paritySpec{
	"jmachine/internal/machine.Machine": {
		serialized: []string{"Net", "Nodes", "cycle", "WatchdogTrips",
			"lastSig", "lastMove", "sigValid",
			"parked", "wakeAt", "needWake", "caughtUpTo"},
		derived: []string{
			"wakeSeq",    // engine cache-invalidation generation; restore bumps it, exact value unobservable
			"Cfg",        // construction input; dims verified on restore
			"Stats",      // view over the per-node stats.Node accumulators, serialized via each mdp.Node
			"cycleFns",   // attached hooks; re-attached by the restoring process
			"stepper",    // engine attachment; re-attached
			"watchdog",   // config window (SetWatchdog), not run state
			"fast",       // stepping-mode switch (SetFastPath), digest-neutral
			"pinned",     // derived from the registered hooks' horizons
			"nParked",    // recomputed from parked on restore
			"horizons",   // attached hook horizons; re-attached
			"compiledOn", // compiled-tier attachment flag; re-attached (compiled.Attach)
			"fuse",       // fusion fence, republished by every StepN; dead between runs
			"hznValid", "hznSeq", "hznRetry", // send-horizon cache; invalidated by the wakeSeq bump on restore
		},
	},
	"jmachine/internal/machine.progressSig": {
		serialized: []string{"instrs", "threads", "faults", "phitHops", "delivered", "returned"},
	},
	"jmachine/internal/network.Network": {
		serialized: []string{"routers", "queues", "out", "rr", "cycle", "stats", "actPhits", "actMsgs"},
		derived: []string{
			"cfg",                                                                 // construction input
			"nbr",                                                                 // topology, rebuilt by New
			"midX",                                                                // topology
			"wakeFn", "injectFns", "deliverFns", "dropFns", "stallFn", "filterFn", // attached hooks
			"loadFn", // engine activity-ledger callback; re-attached (NewShardRun), ledger rescanned on restore
		},
	},
	"jmachine/internal/network.router": {
		serialized: []string{"in", "outOwner", "inRoute", "linkStamp", "occ"},
		derived: []string{
			"x", "y", "z", // topology
			"pushStamp", "pushedNew", // within-cycle scratch, dead between cycles
		},
	},
	"jmachine/internal/network.buf": {
		serialized: []string{"slots", "n", "popStamp"},
		derived: []string{
			"head",    // ring rotation is unobservable; restore rebases to 0
			"snapOcc", // shard-phase scratch, dead between cycles
		},
	},
	"jmachine/internal/network.phitRef": {
		serialized: []string{"m", "idx", "arrived"},
	},
	"jmachine/internal/network.outbox": {
		serialized: []string{"msgs", "phitIdx", "words"},
	},
	"jmachine/internal/network.Message": {
		serialized: []string{"DestX", "DestY", "DestZ", "Pri", "Src", "Words",
			"EnqueueCycle", "DeliverCycle", "Returning", "absorb", "Returns",
			"origX", "origY", "origZ", "Seq", "Ctl", "HasCheck", "Check",
			"CorruptWord", "CorruptMask", "drop", "dropReason"},
		derived: []string{
			"pooled", // allocator bookkeeping; restored messages are never re-pooled
		},
	},
	"jmachine/internal/network.Stats": {
		serialized: []string{"Cycles", "PhitHops", "BisectionPhits", "DeliveredMsgs",
			"DeliveredWords", "LatencySum", "DeliveryStalls", "ReturnedMsgs",
			"Retransmits", "DroppedMsgs", "CorruptDrops", "DupDrops", "StallsInjected"},
	},
	"jmachine/internal/mdp.Node": {
		serialized: []string{"Mem", "Xl", "Queues", "Stats", "Trace",
			"ctx", "cur", "stall", "stallCat", "region", "building", "pendingLen",
			"softQ", "softAlloc", "softUsed", "p0Soft",
			"halted", "frozen", "killed", "fatal", "cycle", "nnr"},
		derived: []string{
			"ID", "X", "Y", "Z", // topology
			"Cfg",         // construction input
			"Net", "Prog", // shared attachments; program is fingerprinted
			"Watch",                 // observer tap, deliberately outside StateDigest
			"softBase", "softWords", // derived from Cfg.SoftQueue in NewNode
			"faultFn", "syncHook", // attached system software / scheduler hooks
			"compiled", "fuse", // compiled-tier attachments; re-attached (compiled.Attach)
			"fuseSegs", "fuseHead", // fused charge plan; drained before every snapshot fence
			"fusedInstrs", // fusion diagnostic counter, outside StateDigest
			"fuseStats",   // fusion boundary/window accounting, outside StateDigest
		},
	},
	"jmachine/internal/mdp.Context": {
		serialized: []string{"Regs", "IP", "Running", "HandlerIP"},
	},
	"jmachine/internal/mdp.softMsg": {
		serialized: []string{"addr", "words"},
	},
	"jmachine/internal/queue.Queue": {
		serialized: []string{"buf", "capWords", "limit", "used", "arriving", "expecting",
			"msgs", "maxUsed", "delivered", "rejected"},
		derived: []string{
			"head", // ring rotation is unobservable; restore rebases to 0
		},
	},
	"jmachine/internal/mem.Memory": {
		serialized: []string{"pages", "size", "imemWords"},
	},
	"jmachine/internal/xlate.Table": {
		serialized: []string{"sets", "ways", "keys", "vals", "valid", "lru",
			"hits", "misses", "inserts", "evictions"},
	},
	"jmachine/internal/stats.Node": {
		serialized: []string{"Cycles", "Instrs", "Threads", "SendFaultCycles",
			"SendFaults", "MsgsSent", "WordsSent", "XlateFaults", "CfutFaults",
			"OverflowFaults", "byHandler", "cur"},
	},
	"jmachine/internal/stats.HandlerStats": {
		serialized: []string{"Invocations", "Instrs", "MsgWords"},
	},
	"jmachine/internal/trace.Buffer": {
		serialized: []string{"events", "capEvents", "count", "dropped"},
		derived: []string{
			"next", // ring rotation is unobservable; restore rebases oldest-first
		},
	},
	"jmachine/internal/trace.Event": {
		serialized: []string{"Cycle", "Node", "Kind", "A", "B"},
	},
	"jmachine/internal/rt.Runtime": {
		serialized: []string{"nodes"},
		derived: []string{
			"M",               // the machine, serialized as its own section
			"Policy",          // construction input (function table)
			"services",        // registered services; re-registered by the process
			"restore", "dack", // code addresses, derived from the program
		},
	},
	"jmachine/internal/rt.NodeState": {
		serialized: []string{"saved", "nextWaiter", "names"},
		derived: []string{
			"User", // language-runtime extension point; unused by checkpointed workloads (documented limitation)
		},
	},
	"jmachine/internal/rt.savedThread": {
		serialized: []string{"ctx", "level"},
	},
	"jmachine/internal/rt.Reliable": {
		serialized: []string{"nodes", "stats", "seen", "err"},
		derived: []string{
			"rt",  // back-reference
			"cfg", // construction input, verified literally on restore
			"nn",  // machine node count
		},
	},
	"jmachine/internal/rt.relNode": {
		serialized: []string{"count", "pending"},
	},
	"jmachine/internal/rt.pendingMsg": {
		serialized: []string{"src", "destX", "destY", "destZ", "pri", "words", "deadline", "attempts"},
	},
	"jmachine/internal/rt.ReliableStats": {
		serialized: []string{"Tracked", "AcksSent", "AcksReceived", "Retries", "DupAcked", "Failures"},
	},
	"jmachine/internal/chaos.Injector": {
		serialized: []string{"next", "stalls", "expiries", "armed", "applied", "corrupts"},
		derived: []string{
			"m",        // back-reference
			"campaign", // immutable input, fingerprint-verified
			"events",   // sorted copy of the campaign, fingerprint-verified
		},
	},
	"jmachine/internal/chaos.activeStall": {
		serialized: []string{"node", "port", "until"},
	},
	"jmachine/internal/chaos.expiry": {
		serialized: []string{"cycle", "node", "pri", "kind"},
	},
}

func typeKey(ty reflect.Type) string {
	if ty.PkgPath() == "" {
		return ty.String()
	}
	return ty.PkgPath() + "." + ty.Name()
}

func opaque(ty reflect.Type) bool {
	if opaqueTypes[typeKey(ty)] {
		return true
	}
	pkg := ty.PkgPath()
	for _, p := range opaquePkgs {
		if pkg == p {
			return true
		}
	}
	return false
}

func TestSerializationParity(t *testing.T) {
	seen := map[reflect.Type]bool{}
	var walk func(ty reflect.Type, path string)
	walk = func(ty reflect.Type, path string) {
		switch ty.Kind() {
		case reflect.Pointer, reflect.Slice, reflect.Array:
			walk(ty.Elem(), path+"/*")
		case reflect.Map:
			walk(ty.Key(), path+"/key")
			walk(ty.Elem(), path+"/val")
		case reflect.Struct:
			if opaque(ty) || seen[ty] {
				return
			}
			seen[ty] = true
			key := typeKey(ty)
			if ty.Name() == "" {
				t.Errorf("unnamed struct at %s: name it so it can carry a parity spec", path)
				return
			}
			var fields []string
			for i := 0; i < ty.NumField(); i++ {
				fields = append(fields, ty.Field(i).Name)
			}
			sp, ok := paritySpecs[key]
			if !ok {
				t.Errorf("no parity spec for %s (reached via %s); classify its fields: %v", key, path, fields)
				return
			}
			classified := map[string]string{}
			for _, f := range sp.serialized {
				classified[f] = "serialized"
			}
			for _, f := range sp.derived {
				if classified[f] != "" {
					t.Errorf("%s: field %s classified twice", key, f)
				}
				classified[f] = "derived"
			}
			have := map[string]bool{}
			for _, f := range fields {
				have[f] = true
				if classified[f] == "" {
					t.Errorf("%s: field %s is not covered by the checkpoint codec and not justified as derived — update internal/ckpt and this spec", key, f)
				}
			}
			var stale []string
			for f := range classified {
				if !have[f] {
					stale = append(stale, f)
				}
			}
			sort.Strings(stale)
			if len(stale) > 0 {
				t.Errorf("%s: parity spec lists removed fields %v", key, stale)
			}
			for i := 0; i < ty.NumField(); i++ {
				f := ty.Field(i)
				if classified[f.Name] != "serialized" {
					continue // derived subtrees are not checkpoint-owned
				}
				walk(f.Type, fmt.Sprintf("%s.%s", path, f.Name))
			}
		}
	}
	walk(reflect.TypeOf(machine.Machine{}), "machine.Machine")
	walk(reflect.TypeOf(rt.Runtime{}), "rt.Runtime")
	walk(reflect.TypeOf(rt.Reliable{}), "rt.Reliable")
	walk(reflect.TypeOf(chaos.Injector{}), "chaos.Injector")
}
