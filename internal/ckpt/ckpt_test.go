package ckpt_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jmachine/internal/ckpt"
)

func sampleSnapshot() *ckpt.Snapshot {
	return &ckpt.Snapshot{Sections: []ckpt.Section{
		{Name: "machine", Data: []byte{1, 2, 3, 4, 5}},
		{Name: "rt", Data: []byte{}},
		{Name: "rt.reliable", Data: bytes.Repeat([]byte{0xaa}, 300)},
	}}
}

func TestContainerRoundTrip(t *testing.T) {
	snap := sampleSnapshot()
	enc := snap.Encode()
	got, err := ckpt.Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got.Sections) != len(snap.Sections) {
		t.Fatalf("section count %d, want %d", len(got.Sections), len(snap.Sections))
	}
	for i, s := range snap.Sections {
		if got.Sections[i].Name != s.Name {
			t.Errorf("section %d name %q, want %q", i, got.Sections[i].Name, s.Name)
		}
		if !bytes.Equal(got.Sections[i].Data, s.Data) {
			t.Errorf("section %d data mismatch", i)
		}
	}
	// Decoded sections must not alias the encoded buffer: corrupting the
	// source afterwards must not corrupt the snapshot.
	for i := range enc {
		enc[i] = 0xff
	}
	if !bytes.Equal(got.Sections[0].Data, snap.Sections[0].Data) {
		t.Fatal("decoded section aliases the encoded buffer")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	enc := sampleSnapshot().Encode()

	t.Run("empty", func(t *testing.T) {
		if _, err := ckpt.Decode(nil); err == nil {
			t.Fatal("want error for empty input")
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte(nil), enc...)
		bad[0] ^= 0x40
		if _, err := ckpt.Decode(bad); err == nil {
			t.Fatal("want error for bad magic")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{1, len(enc) / 4, len(enc) / 2, len(enc) - 1} {
			if _, err := ckpt.Decode(enc[:n]); err == nil {
				t.Fatalf("want error for truncation at %d bytes", n)
			}
		}
	})
	t.Run("bit-flip", func(t *testing.T) {
		// Any single-bit payload flip must fail the section CRC.
		for _, pos := range []int{12, len(enc) / 2, len(enc) - 3} {
			bad := append([]byte(nil), enc...)
			bad[pos] ^= 0x01
			if _, err := ckpt.Decode(bad); err == nil {
				t.Fatalf("want error for bit flip at byte %d", pos)
			}
		}
	})
	t.Run("trailing-garbage", func(t *testing.T) {
		bad := append(append([]byte(nil), enc...), 0x00)
		if _, err := ckpt.Decode(bad); err == nil {
			t.Fatal("want error for trailing garbage")
		}
	})
}

func TestWriteFileReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.ckpt")
	snap := sampleSnapshot()
	if err := ckpt.WriteFile(path, snap); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	// Overwrite must be atomic-rename based: no temp file left behind.
	if err := ckpt.WriteFile(path, snap); err != nil {
		t.Fatalf("WriteFile overwrite: %v", err)
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != filepath.Base(path) {
			t.Errorf("stray file %q next to checkpoint", e.Name())
		}
	}
	got, err := ckpt.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(got.Encode(), snap.Encode()) {
		t.Fatal("ReadFile round trip mismatch")
	}
	if _, err := ckpt.ReadFile(filepath.Join(t.TempDir(), "missing.ckpt")); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestDecodeErrorMentionsCorruption(t *testing.T) {
	enc := sampleSnapshot().Encode()
	bad := append([]byte(nil), enc...)
	bad[len(bad)-2] ^= 0x10
	_, err := ckpt.Decode(bad)
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("corruption error %q should mention corruption", err)
	}
}
