package ckpt

import (
	"errors"
	"flag"

	"jmachine/internal/machine"
)

// Flags bundles the -ckpt / -ckpt-every / -resume trio shared by every
// command that can persist a run (jm-chaos, jm-apps, jm-trace,
// jm-bench, jm-serve). Register it on a FlagSet, Validate after
// parsing, then Attach the layer stack once the machine is built.
type Flags struct {
	Path   string // checkpoint file ("" = checkpointing off)
	Every  int64  // checkpoint period in cycles
	Resume bool   // restore Path over the fresh machine and continue
}

// DefaultEvery is the default checkpoint period in cycles.
const DefaultEvery = 65536

// Register installs the three flags on fs. desc is spliced into the
// -ckpt usage string so commands with non-standard layouts (jm-bench's
// per-shard-row suffixing) can say so.
func (f *Flags) Register(fs *flag.FlagSet, desc string) {
	if desc == "" {
		desc = "write periodic crash-consistent checkpoints to this file"
	}
	fs.StringVar(&f.Path, "ckpt", "", desc)
	fs.Int64Var(&f.Every, "ckpt-every", DefaultEvery, "checkpoint period in cycles")
	fs.BoolVar(&f.Resume, "resume", false,
		"restore the -ckpt file over the fresh machine and continue from it")
}

// Validate reports the flag-combination errors shared by all commands.
func (f Flags) Validate() error {
	if f.Resume && f.Path == "" {
		return errors.New("-resume requires -ckpt")
	}
	return nil
}

// WithPath returns a copy of f pointing at a different file — for
// commands that fan one flag set out over several independent runs.
func (f Flags) WithPath(path string) Flags {
	f.Path = path
	return f
}

// Layers is a machine's attached checkpoint stack: the saver list that
// must restore in attachment order, plus the periodic writer when a
// path is configured. It replaces the holder structs that were copied
// across the commands.
type Layers struct {
	Flags  Flags
	Savers []Saver
	CW     *Checkpointer // nil when Flags.Path == ""
	m      *machine.Machine
}

// Attach records the layer stack for m and, when a checkpoint path is
// set, installs the periodic writer. Call it after every Saver layer
// (runtime, reliable delivery, chaos, application state) is attached
// to the machine, passing the savers in attachment order.
func (f Flags) Attach(m *machine.Machine, savers ...Saver) *Layers {
	l := &Layers{Flags: f, Savers: savers, m: m}
	if f.Path != "" {
		l.CW = AttachWriter(m, f.Path, f.Every, savers...)
	}
	return l
}

// PreRun finalizes start-up, right before the run loop: on a resumed
// run it restores the checkpoint over the freshly-started machine
// (workload start-up must already be applied — see Restore), and on a
// fresh run it seeds the file with cycle-zero state so a crash at any
// point leaves something to resume. No-op when checkpointing is off.
func (l *Layers) PreRun() error {
	if l.Flags.Path == "" {
		return nil
	}
	if l.Flags.Resume {
		return RestoreFile(l.Flags.Path, l.m, l.Savers...)
	}
	return l.CW.WriteNow()
}

// WriteNow forces an immediate checkpoint (no-op when off).
func (l *Layers) WriteNow() error {
	if l.CW == nil {
		return nil
	}
	return l.CW.WriteNow()
}
