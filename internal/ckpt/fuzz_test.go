package ckpt_test

// FuzzRestore hardens the restore path against hostile files: any
// truncated, bit-flipped, or version-skewed checkpoint must produce a
// clean error — never a panic, never a silently wrong machine. The
// seed corpus starts from a real captured checkpoint so mutations
// reach past the container into the per-section codecs.

import (
	"os"
	"path/filepath"
	"testing"

	"jmachine/internal/bench"
	"jmachine/internal/ckpt"
)

// captureSeed writes a real mid-run pingpong checkpoint and returns
// its bytes.
func captureSeed(f *testing.F) []byte {
	f.Helper()
	path := filepath.Join(f.TempDir(), "seed.ckpt")
	rc := fuzzConfig()
	rc.Ckpt = path
	rc.CkptEvery = 16
	rc.Budget = 30 // dies mid-flight with a cycle-16 checkpoint on disk
	if _, err := bench.PingCampaign(equivCampaign(), rc); err != nil {
		f.Fatalf("seed campaign: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		f.Fatalf("seed checkpoint: %v", err)
	}
	return b
}

func fuzzConfig() bench.ResilienceConfig {
	return bench.ResilienceConfig{
		Nodes:      equivNodes,
		Checksum:   true,
		RTS:        true,
		MaxReturns: 32,
		Reliable:   true,
		Budget:     10_000,
	}
}

func FuzzRestore(f *testing.F) {
	valid := captureSeed(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(ckpt.Magic))
	f.Add(valid[:len(valid)/3])
	f.Add(valid[:len(valid)-1])
	// Version skew: corrupt the container magic's version digit.
	skew := append([]byte(nil), valid...)
	skew[6] = '2'
	f.Add(skew)
	// Bit flips at the container header, mid-payload, and final CRC.
	for _, pos := range []int{8, len(valid) / 2, len(valid) - 1} {
		flip := append([]byte(nil), valid...)
		flip[pos] ^= 0x04
		f.Add(flip)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Container decode must never panic, whatever the input.
		if _, err := ckpt.Decode(data); err != nil && len(data) >= len(valid) && string(data) == string(valid) {
			t.Fatalf("valid checkpoint rejected: %v", err)
		}
		// Full-stack restore (ReadFile → section match → per-layer
		// decoders → digest self-check) must error or succeed cleanly.
		path := filepath.Join(t.TempDir(), "in.ckpt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		rc := fuzzConfig()
		rc.Ckpt = path
		rc.Resume = true
		res, err := bench.PingCampaign(equivCampaign(), rc)
		if string(data) == string(valid) {
			// The unmodified seed must restore and complete.
			if err != nil {
				t.Fatalf("resume of valid checkpoint: %v", err)
			}
			if !res.Completed {
				t.Fatalf("resume of valid checkpoint did not complete: %v", res.Err)
			}
		}
	})
}
