package ckpt_test

// The checkpoint equivalence matrix: every workload × shard count ×
// stepping mode, with an active chaos campaign, must satisfy the
// restore contract — a run interrupted at a checkpoint and resumed in
// a fresh machine ends with a final StateDigest byte-identical to the
// uninterrupted run's.
//
// The micro-benchmarks (pingpong, barrier) are driven through the
// bench campaigns' Ckpt/Resume plumbing: a first run with a tiny cycle
// budget plays the crashed process (it dies with a periodic checkpoint
// on disk), a second run resumes the file to completion, and a third
// run never checkpoints at all. The applications capture mid-run from
// a one-shot cycle hook instead, since their budgets are internal.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"jmachine/internal/apps/lcs"
	"jmachine/internal/apps/nqueens"
	"jmachine/internal/apps/radix"
	"jmachine/internal/apps/tsp"
	"jmachine/internal/bench"
	"jmachine/internal/chaos"
	"jmachine/internal/ckpt"
	"jmachine/internal/engine"
	"jmachine/internal/machine"
	"jmachine/internal/rt"
)

const equivNodes = 8

func equivCampaign() chaos.Campaign {
	return chaos.RandomCampaign(11, equivNodes, 50_000, 4)
}

// appCase adapts one application to the equivalence runner. snapAt is
// a mid-run capture cycle (the seeded runs take snapAt*2 cycles or
// more, so the checkpoint always lands while work is in flight).
type appCase struct {
	name   string
	snapAt int64
	run    func(setup func(*machine.Machine, *rt.Runtime), preRun func(*machine.Machine) error) (*machine.Machine, error)
}

func appCases() []appCase {
	return []appCase{
		{"lcs", 15_000, func(setup func(*machine.Machine, *rt.Runtime), preRun func(*machine.Machine) error) (*machine.Machine, error) {
			res, err := lcs.Run(equivNodes, lcs.Params{LenA: 64, LenB: 128, Setup: setup, PreRun: preRun})
			return res.M, err
		}},
		{"radix", 20_000, func(setup func(*machine.Machine, *rt.Runtime), preRun func(*machine.Machine) error) (*machine.Machine, error) {
			res, err := radix.Run(equivNodes, radix.Params{Keys: 512, Setup: setup, PreRun: preRun})
			return res.M, err
		}},
		{"nqueens", 1_500, func(setup func(*machine.Machine, *rt.Runtime), preRun func(*machine.Machine) error) (*machine.Machine, error) {
			res, err := nqueens.Run(equivNodes, nqueens.Params{N: 6, SplitDepth: 2, Setup: setup, PreRun: preRun})
			return res.M, err
		}},
		{"tsp", 4_000, func(setup func(*machine.Machine, *rt.Runtime), preRun func(*machine.Machine) error) (*machine.Machine, error) {
			res, err := tsp.Run(equivNodes, tsp.Params{Cities: 6, Setup: setup, PreRun: preRun})
			return res.M, err
		}},
	}
}

// runApp executes one application under chaos with the full resilience
// stack. With resume false it writes a checkpoint from a one-shot hook
// at w.snapAt and runs to completion (the uninterrupted reference);
// with resume true it restores path after start-up and continues.
func runApp(t *testing.T, w appCase, shards int, reference bool, path string, resume bool) uint64 {
	t.Helper()
	var m *machine.Machine
	var eng *engine.Engine
	var savers []ckpt.Saver
	var capErr error
	setup := func(mm *machine.Machine, r *rt.Runtime) {
		m = mm
		mm.Net.SetChecksum(true)
		mm.Net.SetReturnToSender(true)
		mm.Net.SetMaxReturns(32)
		mm.SetWatchdog(100_000)
		if reference {
			mm.SetFastPath(false)
		}
		rel := rt.EnableReliable(r, rt.ReliableConfig{})
		inj := chaos.Attach(mm, equivCampaign())
		savers = []ckpt.Saver{r, rel, inj}
		if !resume {
			fired := false
			mm.AddCycleHook(func(c int64) {
				if fired || c < w.snapAt {
					return
				}
				fired = true
				if err := ckpt.WriteFile(path, ckpt.Capture(mm, savers...)); err != nil && capErr == nil {
					capErr = err
				}
			}, func(now int64) int64 {
				if fired || now >= w.snapAt {
					return machine.NoEvent
				}
				return w.snapAt
			})
		}
		if shards > 1 {
			eng = engine.Attach(mm, shards)
		}
	}
	preRun := func(mm *machine.Machine) error {
		if !resume {
			return nil
		}
		return ckpt.RestoreFile(path, mm, savers...)
	}
	resM, err := w.run(setup, preRun)
	eng.Stop()
	if err != nil {
		t.Fatalf("%s (shards=%d resume=%v): %v", w.name, shards, resume, err)
	}
	if capErr != nil {
		t.Fatalf("%s: checkpoint write: %v", w.name, capErr)
	}
	if resM != nil {
		m = resM
	}
	if !resume {
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("%s: capture hook at cycle %d never fired: %v", w.name, w.snapAt, err)
		}
	}
	return m.StateDigest()
}

// microCase drives pingpong or barrier through the bench campaigns.
type microCase struct {
	name        string
	every       int64 // checkpoint period for the truncated run
	truncBudget int64 // cycle budget that kills the run mid-flight
}

func microCases() []microCase {
	// pingpong completes in ~60 cycles, barrier in ~1600 under this
	// campaign; the budgets stop each run after at least one periodic
	// checkpoint and before completion.
	return []microCase{
		{"pingpong", 16, 30},
		{"barrier", 256, 900},
	}
}

// runMicro runs one micro-benchmark campaign. phase selects the run's
// role: "truncated" (checkpointing, dies on a tiny budget), "resume"
// (restores the file, runs to completion), "clean" (no checkpointing).
func runMicro(t *testing.T, w microCase, shards int, reference bool, path, phase string) uint64 {
	t.Helper()
	rc := bench.ResilienceConfig{
		Nodes:      equivNodes,
		Checksum:   true,
		RTS:        true,
		MaxReturns: 32,
		Watchdog:   100_000,
		Reliable:   true,
		Shards:     shards,
		Reference:  reference,
	}
	switch phase {
	case "truncated":
		rc.Ckpt = path
		rc.CkptEvery = w.every
		rc.Budget = w.truncBudget
	case "resume":
		rc.Ckpt = path
		rc.CkptEvery = w.every
		rc.Resume = true
	}
	var res *bench.CampaignResult
	var err error
	if w.name == "pingpong" {
		res, err = bench.PingCampaign(equivCampaign(), rc)
	} else {
		res, err = bench.BarrierCampaign(equivCampaign(), rc, 4)
	}
	if err != nil {
		t.Fatalf("%s (%s, shards=%d): %v", w.name, phase, shards, err)
	}
	if phase != "truncated" && !res.Completed {
		t.Fatalf("%s (%s, shards=%d): did not complete: %v", w.name, phase, shards, res.Err)
	}
	return res.StateDigest
}

// TestCheckpointEquivalence is the acceptance matrix: six workloads ×
// shard counts {1,2,4,7} × {reference, fast} stepping, chaos active,
// interrupted-and-resumed digest == uninterrupted digest everywhere.
func TestCheckpointEquivalence(t *testing.T) {
	shardCounts := []int{1, 2, 4, 7}
	modes := []bool{false, true} // reference?
	if testing.Short() {
		shardCounts = []int{1, 4}
		modes = []bool{false}
	}
	for _, w := range microCases() {
		for _, shards := range shardCounts {
			for _, reference := range modes {
				name := fmt.Sprintf("%s/shards=%d/ref=%v", w.name, shards, reference)
				t.Run(name, func(t *testing.T) {
					path := filepath.Join(t.TempDir(), "micro.ckpt")
					runMicro(t, w, shards, reference, path, "truncated")
					resumed := runMicro(t, w, shards, reference, path, "resume")
					clean := runMicro(t, w, shards, reference, "", "clean")
					if resumed != clean {
						t.Errorf("resumed digest %016x != uninterrupted %016x", resumed, clean)
					}
				})
			}
		}
	}
	for _, w := range appCases() {
		for _, shards := range shardCounts {
			for _, reference := range modes {
				name := fmt.Sprintf("%s/shards=%d/ref=%v", w.name, shards, reference)
				t.Run(name, func(t *testing.T) {
					path := filepath.Join(t.TempDir(), "app.ckpt")
					clean := runApp(t, w, shards, reference, path, false)
					resumed := runApp(t, w, shards, reference, path, true)
					if resumed != clean {
						t.Errorf("resumed digest %016x != uninterrupted %016x", resumed, clean)
					}
				})
			}
		}
	}
}

// TestCheckpointCrossShardResume proves a checkpoint is portable
// across stepping configurations: a file captured under the sequential
// reference loop resumes under the sharded fast path (and vice versa)
// with the same final digest.
func TestCheckpointCrossShardResume(t *testing.T) {
	w := appCases()[0] // lcs
	path := filepath.Join(t.TempDir(), "cross.ckpt")
	clean := runApp(t, w, 1, true, path, false)   // capture: sequential reference
	resumed := runApp(t, w, 4, false, path, true) // resume: sharded fast path
	if resumed != clean {
		t.Errorf("cross-config resume digest %016x != uninterrupted %016x", resumed, clean)
	}
}
