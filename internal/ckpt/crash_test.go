//go:build unix

package ckpt_test

// The crash-recovery harness: build the real jm-chaos binary, SIGKILL
// it mid-run (after at least one periodic checkpoint has landed), then
// resume from the surviving file in a fresh process and require the
// final digest to be byte-identical to an uninterrupted run. This is
// the end-to-end proof that the checkpoint file on disk — not just the
// in-memory snapshot — carries the complete simulation state across a
// hard process death.

import (
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"syscall"
	"testing"
	"time"
)

var digestRe = regexp.MustCompile(`digest=([0-9a-f]{16})`)

func buildChaos(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "jm-chaos")
	cmd := exec.Command("go", "build", "-o", bin, "jmachine/cmd/jm-chaos")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build jm-chaos: %v\n%s", err, out)
	}
	return bin
}

func runChaos(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	m := digestRe.FindSubmatch(out)
	if m == nil {
		t.Fatalf("no digest in output:\n%s", out)
	}
	return string(m[1])
}

func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a child binary; skipped in -short")
	}
	dir := t.TempDir()
	bin := buildChaos(t, dir)
	ckptPath := filepath.Join(dir, "crash.ckpt")
	base := []string{"-workload", "lcs", "-seed", "11", "-reliable"}

	// Uninterrupted reference run (no checkpointing at all).
	want := runChaos(t, bin, base...)

	// Crashing run: SIGKILL lands at a random point after the first
	// periodic checkpoint is on disk — the child gets no chance to
	// clean up, exactly like a power cut.
	crash := exec.Command(bin, append(base, "-ckpt", ckptPath, "-ckpt-every", "2000")...)
	if err := crash.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- crash.Wait() }()
	deadline := time.After(30 * time.Second)
	for {
		if _, err := os.Stat(ckptPath); err == nil {
			break
		}
		select {
		case err := <-done:
			t.Fatalf("child exited before writing a checkpoint: %v", err)
		case <-deadline:
			crash.Process.Kill()
			t.Fatal("no checkpoint appeared within 30s")
		case <-time.After(time.Millisecond):
		}
	}
	time.Sleep(time.Duration(rand.Intn(20)) * time.Millisecond)
	killed := true
	if err := crash.Process.Signal(syscall.SIGKILL); err != nil {
		// The child can finish before the kill lands; the resume below
		// then continues from its last periodic checkpoint instead.
		killed = false
	}
	<-done

	// Fresh process resumes from whatever survived the kill.
	got := runChaos(t, bin, append(base, "-ckpt", ckptPath, "-resume")...)
	if got != want {
		t.Errorf("resumed digest %s != uninterrupted %s (killed=%v)", got, want, killed)
	}
}
