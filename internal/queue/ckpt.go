package queue

import (
	"fmt"

	"jmachine/internal/ckpt/wire"
	"jmachine/internal/word"
)

// SaveState serializes the queue's complete dynamic state for a
// checkpoint: buffered words in logical (head-first) order, arrival
// bookkeeping, the squeeze limit, and statistics. The hardware
// capacity is written only to be verified on restore — it is
// configuration, rebuilt by the restoring process.
func (q *Queue) SaveState(e *wire.Encoder) {
	e.Int(q.capWords)
	e.Int(q.limit)
	e.Int(q.used)
	e.Int(q.arriving)
	e.Int(q.expecting)
	e.Int(q.msgs)
	e.Int(q.maxUsed)
	e.U64(q.delivered)
	e.U64(q.rejected)
	for i := 0; i < q.used; i++ {
		e.U64(uint64(q.buf[(q.head+i)%q.capWords]))
	}
}

// RestoreState rebuilds the queue from a checkpoint. The buffered
// words land at ring offset zero: the digest and all queue operations
// address contents logically from head, so the physical rotation is
// unobservable. The backing array is written in place (the network and
// the node share this queue by pointer).
func (q *Queue) RestoreState(d *wire.Decoder) error {
	if hc := d.Int(); hc != q.capWords {
		return fmt.Errorf("queue: checkpoint capacity %d != configured %d", hc, q.capWords)
	}
	q.limit = d.Int()
	used := d.Int()
	if used < 0 || used > q.capWords {
		return fmt.Errorf("queue: checkpoint used %d out of range", used)
	}
	q.arriving = d.Int()
	q.expecting = d.Int()
	q.msgs = d.Int()
	q.maxUsed = d.Int()
	q.delivered = d.U64()
	q.rejected = d.U64()
	q.head = 0
	q.used = used
	if used == 0 {
		q.buf = nil // restore an idle queue to its lazy state
	} else {
		if q.buf == nil {
			q.buf = make([]word.Word, q.capWords)
		}
		for i := 0; i < used; i++ {
			q.buf[i] = word.Word(d.U64())
		}
		for i := used; i < q.capWords; i++ {
			q.buf[i] = 0
		}
	}
	if q.msgs < 0 || q.arriving < 0 || q.expecting < 0 || q.maxUsed < 0 {
		return fmt.Errorf("queue: negative checkpoint counters")
	}
	return d.Err()
}
