package queue

import (
	"testing"
	"testing/quick"

	"jmachine/internal/word"
)

func pushMsg(q *Queue, handler int32, body ...int32) bool {
	if !q.Push(word.MsgHeader(handler, len(body)+1)) {
		return false
	}
	for _, v := range body {
		if !q.Push(word.Int(v)) {
			return false
		}
	}
	return true
}

func TestBasicDelivery(t *testing.T) {
	q := New(16)
	if q.HeadReady() {
		t.Fatal("empty queue reports ready")
	}
	if !pushMsg(q, 7, 10, 20) {
		t.Fatal("push failed")
	}
	if !q.HeadReady() {
		t.Fatal("complete message not ready")
	}
	if q.HeadLen() != 3 {
		t.Errorf("HeadLen = %d", q.HeadLen())
	}
	if q.WordAt(0).HeaderIP() != 7 {
		t.Errorf("header ip = %d", q.WordAt(0).HeaderIP())
	}
	if q.WordAt(1).Data() != 10 || q.WordAt(2).Data() != 20 {
		t.Errorf("body = %v %v", q.WordAt(1), q.WordAt(2))
	}
	q.Pop()
	if q.HeadReady() || q.Used() != 0 {
		t.Error("pop did not free queue")
	}
}

func TestPartialMessageNotReady(t *testing.T) {
	q := New(16)
	q.Push(word.MsgHeader(1, 3))
	q.Push(word.Int(5))
	if q.HeadReady() {
		t.Error("incomplete message reported ready")
	}
	q.Push(word.Int(6))
	if !q.HeadReady() {
		t.Error("complete message not ready")
	}
}

func TestBackpressure(t *testing.T) {
	q := New(4)
	if !pushMsg(q, 1, 1, 2, 3) {
		t.Fatal("4-word message should fit a 4-word queue")
	}
	if q.Push(word.MsgHeader(1, 1)) {
		t.Error("push into full queue succeeded")
	}
	if q.Stats().RejectedWords != 1 {
		t.Errorf("rejected = %d", q.Stats().RejectedWords)
	}
	q.Pop()
	if !q.Push(word.MsgHeader(1, 1)) {
		t.Error("push after pop failed")
	}
}

func TestWrapAround(t *testing.T) {
	q := New(8)
	for i := 0; i < 50; i++ {
		if !pushMsg(q, int32(i), int32(i*10), int32(i*10+1)) {
			t.Fatalf("push %d failed", i)
		}
		if q.WordAt(1).Data() != int32(i*10) || q.WordAt(2).Data() != int32(i*10+1) {
			t.Fatalf("iteration %d: body wrong", i)
		}
		q.Pop()
	}
	if q.Stats().Delivered != 50 {
		t.Errorf("delivered = %d", q.Stats().Delivered)
	}
}

func TestFIFOProperty(t *testing.T) {
	// Messages come out in the order they went in, with bodies intact.
	f := func(bodies [][4]int32) bool {
		if len(bodies) > 16 {
			bodies = bodies[:16]
		}
		q := New(256)
		for i, b := range bodies {
			if !pushMsg(q, int32(i), b[0], b[1], b[2], b[3]) {
				return false
			}
		}
		for i, b := range bodies {
			if !q.HeadReady() || q.WordAt(0).HeaderIP() != int32(i) {
				return false
			}
			for j, v := range b {
				if q.WordAt(j+1).Data() != v {
					return false
				}
			}
			q.Pop()
		}
		return q.Used() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMalformedHeaderCoerced(t *testing.T) {
	q := New(8)
	q.Push(word.Int(99)) // not a MSG-tagged header
	if !q.HeadReady() {
		t.Fatal("coerced message not ready")
	}
	if q.HeadLen() != 1 {
		t.Errorf("coerced len = %d", q.HeadLen())
	}
}

func TestPopTo(t *testing.T) {
	q := New(16)
	pushMsg(q, 3, 8, 9)
	buf := make([]word.Word, 8)
	n := q.PopTo(buf)
	if n != 3 {
		t.Fatalf("PopTo = %d", n)
	}
	if buf[0].HeaderIP() != 3 || buf[1].Data() != 8 || buf[2].Data() != 9 {
		t.Error("PopTo copied wrong words")
	}
}

func TestMaxUsedStat(t *testing.T) {
	q := New(16)
	pushMsg(q, 1, 1, 2, 3, 4, 5)
	if q.Stats().MaxUsedWords != 6 {
		t.Errorf("MaxUsedWords = %d", q.Stats().MaxUsedWords)
	}
}

func TestSqueezeLimitsCapacity(t *testing.T) {
	q := New(16)
	if q.Cap() != 16 || q.HardCap() != 16 {
		t.Fatalf("cap=%d hard=%d", q.Cap(), q.HardCap())
	}
	q.SetLimit(4)
	if q.Cap() != 4 {
		t.Errorf("squeezed Cap() = %d, want 4", q.Cap())
	}
	if q.HardCap() != 16 {
		t.Errorf("HardCap() changed under squeeze: %d", q.HardCap())
	}
	// A 4-word message fills the squeezed queue exactly; the next word
	// is rejected and counted.
	if !pushMsg(q, 1, 1, 2, 3) {
		t.Fatal("4-word message refused at squeezed capacity 4")
	}
	if q.Free() != 0 {
		t.Errorf("Free() = %d, want 0", q.Free())
	}
	if q.Push(word.MsgHeader(2, 1)) {
		t.Error("push accepted beyond squeezed capacity")
	}
	if got := q.Stats().RejectedWords; got != 1 {
		t.Errorf("RejectedWords = %d, want 1", got)
	}
	// Restoring the limit re-opens the hardware capacity.
	q.SetLimit(0)
	if q.Cap() != 16 || q.Free() != 12 {
		t.Errorf("after restore cap=%d free=%d", q.Cap(), q.Free())
	}
	if !q.Push(word.MsgHeader(2, 1)) {
		t.Error("push rejected after squeeze was lifted")
	}
}

func TestSqueezeSustainedBackpressureAccounting(t *testing.T) {
	q := New(64)
	q.SetLimit(8)
	// Sustained offered load against the squeezed queue: every word
	// over the limit is rejected, none are lost silently.
	accepted, rejected := 0, 0
	for i := 0; i < 40; i++ {
		var ok bool
		if i%4 == 0 {
			ok = q.Push(word.MsgHeader(1, 4))
		} else {
			ok = q.Push(word.Int(int32(i)))
		}
		if ok {
			accepted++
		} else {
			rejected++
		}
	}
	if accepted != 8 {
		t.Errorf("accepted %d words, want 8 (the squeezed cap)", accepted)
	}
	if got := q.Stats().RejectedWords; got != uint64(rejected) || rejected != 32 {
		t.Errorf("RejectedWords = %d, local count %d, want 32", got, rejected)
	}
	// Draining makes room again: pop both buffered messages.
	q.Pop()
	q.Pop()
	if q.Used() != 0 || !q.Push(word.MsgHeader(3, 1)) {
		t.Errorf("queue did not recover after drain: used=%d", q.Used())
	}
}
