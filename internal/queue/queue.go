// Package queue models the MDP's hardware message queues.
//
// Arriving messages are buffered in a fixed-size hardware queue per
// priority. A message's words arrive contiguously (wormhole delivery);
// the first word is the header carrying the handler address and message
// length. When a complete message reaches the head of the queue the
// processor dispatches a task for it in four cycles, addressing the
// message body through address register A3.
//
// The paper configures the priority-0 queue for 128 minimum-length
// (4-word) messages in Tuned-J out of a hardware maximum of 256; the
// default capacity here matches that 512-word configuration. When the
// queue fills, delivery back-pressure propagates into the network — the
// behaviour whose consequences the paper's critique discusses.
package queue

import "jmachine/internal/word"

// DefaultCapWords is the default queue capacity in words (the Tuned-J
// configuration: 128 four-word messages).
const DefaultCapWords = 512

// Queue is one hardware message queue.
//
// The backing ring is lazily allocated on the first word pushed (or on
// restore of a non-empty checkpoint): on large meshes most nodes never
// receive a message on one of the two priorities, and the unallocated
// ring costs nothing.
type Queue struct {
	buf      []word.Word // ring storage; nil until a word is buffered
	capWords int         // hardware capacity in words
	limit    int         // fault-injected capacity squeeze in words (0 = none)
	head     int         // ring index of the head message's header
	used     int         // words currently buffered (complete + arriving)

	arriving  int // words of the incomplete message received so far
	expecting int // total words of the incomplete message (0 = none)
	msgs      int // complete messages buffered

	// Statistics.
	maxUsed   int
	delivered uint64 // complete messages received
	rejected  uint64 // words refused because the queue was full
}

// New returns a queue of the given capacity in words (0 selects the
// default).
func New(capWords int) *Queue {
	if capWords <= 0 {
		capWords = DefaultCapWords
	}
	return &Queue{capWords: capWords}
}

// Cap returns the effective capacity in words: the hardware size, or
// the squeezed limit while a capacity fault is injected.
func (q *Queue) Cap() int {
	if q.limit > 0 && q.limit < q.capWords {
		return q.limit
	}
	return q.capWords
}

// HardCap returns the hardware capacity in words, ignoring any squeeze.
func (q *Queue) HardCap() int { return q.capWords }

// SetLimit squeezes the effective capacity to limit words (a chaos
// fault modelling partial buffer failure); 0 restores the full size.
// Words already buffered beyond the limit stay until consumed — only
// admission is constrained.
func (q *Queue) SetLimit(limit int) { q.limit = limit }

// Used returns the number of buffered words.
func (q *Queue) Used() int { return q.used }

// Free returns the number of free words under the effective capacity.
func (q *Queue) Free() int {
	if f := q.Cap() - q.used; f > 0 {
		return f
	}
	return 0
}

// Messages returns the number of complete messages buffered.
func (q *Queue) Messages() int { return q.msgs }

// Push delivers one word from the network. The first word of each
// message must be a MSG-tagged header whose length field covers the
// whole message including the header itself. Push reports false — and
// the word must be retried — when the queue is full.
func (q *Queue) Push(w word.Word) bool {
	if q.used >= q.Cap() {
		q.rejected++
		return false
	}
	if q.expecting == 0 {
		// Header word of a new message.
		n := w.HeaderLen()
		if w.Tag() != word.TagMsg || n < 1 {
			// Malformed traffic: frame it as a 1-word message so the
			// fault surfaces at dispatch rather than wedging the queue.
			w = word.MsgHeader(w.Data(), 1)
			n = 1
		}
		q.expecting = n
		q.arriving = 0
	}
	if q.buf == nil {
		q.buf = make([]word.Word, q.capWords)
	}
	q.buf[(q.head+q.used)%q.capWords] = w
	q.used++
	q.arriving++
	if q.used > q.maxUsed {
		q.maxUsed = q.used
	}
	if q.arriving == q.expecting {
		q.msgs++
		q.delivered++
		q.expecting = 0
		q.arriving = 0
	}
	return true
}

// HeadReady reports whether a complete message is available at the head.
func (q *Queue) HeadReady() bool { return q.msgs > 0 }

// HeadLen returns the length in words of the head message. It must only
// be called when HeadReady.
func (q *Queue) HeadLen() int { return q.buf[q.head].HeaderLen() }

// WordAt reads word i of the head message (0 = header). Reads beyond the
// head message's extent return an integer zero; the processor's segment
// checks fault before that can happen in well-formed programs.
func (q *Queue) WordAt(i int) word.Word {
	if i < 0 || !q.HeadReady() || i >= q.HeadLen() {
		return word.Int(0)
	}
	return q.buf[(q.head+i)%q.capWords]
}

// ForEachHeader calls fn with the header word of every complete message
// currently buffered, head to tail. Words of a partially-arrived tail
// message are not visited. The machine's send-horizon computation uses
// it to bound when a queued activation could first inject.
func (q *Queue) ForEachHeader(fn func(word.Word)) {
	off := q.head
	for m := 0; m < q.msgs; m++ {
		hdr := q.buf[off%q.capWords]
		fn(hdr)
		n := hdr.HeaderLen()
		if n < 1 {
			n = 1 // defensive: Push reframes malformed headers to length 1
		}
		off += n
	}
}

// Pop consumes the head message, freeing its words.
func (q *Queue) Pop() {
	if !q.HeadReady() {
		return
	}
	n := q.HeadLen()
	q.head = (q.head + n) % q.capWords
	q.used -= n
	q.msgs--
}

// PopTo removes the head message, copying it into dst (which must have
// room); used by the software queue-overflow handler to relocate
// messages into memory.
func (q *Queue) PopTo(dst []word.Word) int {
	if !q.HeadReady() {
		return 0
	}
	n := q.HeadLen()
	for i := 0; i < n && i < len(dst); i++ {
		dst[i] = q.WordAt(i)
	}
	q.Pop()
	return n
}

// Stats reports queue counters.
type Stats struct {
	MaxUsedWords  int
	Delivered     uint64
	RejectedWords uint64
}

// Stats returns accumulated counters.
func (q *Queue) Stats() Stats {
	return Stats{MaxUsedWords: q.maxUsed, Delivered: q.delivered, RejectedWords: q.rejected}
}
