package queue

func mix(h, v uint64) uint64 {
	h ^= v
	h *= 0x100000001b3
	h ^= h >> 29
	return h
}

// StateDigest folds the queue's complete state — buffered words in
// logical (head-first) order, arrival bookkeeping, squeeze limit, and
// statistics — into a running 64-bit digest, for the engine
// equivalence suite.
func (q *Queue) StateDigest(h uint64) uint64 {
	h = mix(h, uint64(q.used)|uint64(q.msgs)<<32)
	h = mix(h, uint64(q.arriving)|uint64(q.expecting)<<32)
	h = mix(h, uint64(q.limit))
	for i := 0; i < q.used; i++ {
		h = mix(h, uint64(q.buf[(q.head+i)%q.capWords]))
	}
	h = mix(h, uint64(q.maxUsed))
	h = mix(h, q.delivered)
	h = mix(h, q.rejected)
	return h
}
