package machine

import (
	"errors"
	"strings"
	"testing"

	"jmachine/internal/asm"
)

func TestGridForNodesDegenerate(t *testing.T) {
	// Non-positive sizes must not loop in the factorizer; they yield
	// the minimal machine.
	for _, n := range []int{0, -1, -64} {
		cfg := GridForNodes(n)
		if cfg.DimX != 1 || cfg.DimY != 1 || cfg.DimZ != 1 {
			t.Errorf("GridForNodes(%d) = %dx%dx%d, want 1x1x1",
				n, cfg.DimX, cfg.DimY, cfg.DimZ)
		}
	}
}

func spinProg() *asm.Program {
	b := asm.NewBuilder()
	b.Label("main").Br("main")
	return b.MustAssemble()
}

func TestWatchdogTripsOnIdleWedge(t *testing.T) {
	// No thread ever starts: RunWhile's condition stays true but the
	// progress signature never moves, so the watchdog converts what
	// would be a full cycle-limit burn into ErrNoProgress with a dump.
	m := MustNew(Config{DimX: 2, DimY: 1, DimZ: 1, Watchdog: 200}, trivialProg())
	err := m.RunWhile(func(m *Machine) bool { return true }, 1_000_000)
	var np ErrNoProgress
	if !errors.As(err, &np) {
		t.Fatalf("expected ErrNoProgress, got %v", err)
	}
	if np.Window != 200 {
		t.Errorf("window = %d, want 200", np.Window)
	}
	if np.Diag == nil || len(np.Diag.Suspect) == 0 {
		t.Fatal("diagnostic dump is empty")
	}
	if !np.Diag.AllQuiet {
		t.Error("an all-idle wedge should be reported as AllQuiet")
	}
	if !strings.Contains(err.Error(), "diagnostic at cycle") {
		t.Errorf("error does not embed the dump: %q", err.Error())
	}
	if m.WatchdogTrips != 1 {
		t.Errorf("WatchdogTrips = %d, want 1", m.WatchdogTrips)
	}
	if m.Cycle() >= 1_000_000 {
		t.Error("watchdog did not save the cycle budget")
	}
}

func TestWatchdogTripsOnFrozenNode(t *testing.T) {
	// A frozen node with a runnable thread: the clock advances but no
	// instruction retires. The dump must finger the frozen node.
	m := MustNew(Config{DimX: 2, DimY: 1, DimZ: 1, Watchdog: 300}, spinProg())
	m.Nodes[1].StartBackground(0)
	m.Nodes[1].SetFrozen(true)
	err := m.RunWhile(func(m *Machine) bool { return true }, 1_000_000)
	var np ErrNoProgress
	if !errors.As(err, &np) {
		t.Fatalf("expected ErrNoProgress, got %v", err)
	}
	found := false
	for _, nd := range np.Diag.Suspect {
		if nd.ID == 1 && nd.Frozen {
			found = true
		}
	}
	if !found {
		t.Errorf("frozen node 1 missing from dump:\n%s", np.Diag)
	}
}

func TestWatchdogQuietWhileProgressing(t *testing.T) {
	// A busy spin loop retires instructions every cycle: a small window
	// must never trip while the machine is genuinely working.
	m := MustNew(Config{DimX: 1, DimY: 1, DimZ: 1, Watchdog: 64}, spinProg())
	m.Nodes[0].StartBackground(0)
	err := m.RunWhile(func(m *Machine) bool { return m.Cycle() < 5000 }, 10_000)
	if err != nil {
		t.Fatalf("watchdog tripped on a progressing machine: %v", err)
	}
	if m.WatchdogTrips != 0 {
		t.Errorf("WatchdogTrips = %d, want 0", m.WatchdogTrips)
	}
}

func TestWatchdogDisabledByDefault(t *testing.T) {
	m := MustNew(Grid(1, 1, 1), trivialProg())
	err := m.RunWhile(func(m *Machine) bool { return true }, 2000)
	var lim ErrCycleLimit
	if !errors.As(err, &lim) {
		t.Fatalf("expected cycle limit with watchdog off, got %v", err)
	}
}

func TestRunQuiescentWatchdog(t *testing.T) {
	// A frozen spinner never quiesces; RunQuiescent's per-probe check
	// must trip rather than burning the whole budget.
	m := MustNew(Config{DimX: 1, DimY: 1, DimZ: 1, Watchdog: 200}, spinProg())
	m.Nodes[0].StartBackground(0)
	m.Nodes[0].SetFrozen(true)
	err := m.RunQuiescent(1_000_000)
	var np ErrNoProgress
	if !errors.As(err, &np) {
		t.Fatalf("expected ErrNoProgress, got %v", err)
	}
}

func TestRunQuiescentFatalBeatsCycleLimit(t *testing.T) {
	// Node 0 spins forever (never quiescent) and node 1 has crashed:
	// the final budget check must surface the crash, not the timeout.
	m := MustNew(Grid(2, 1, 1), spinProg())
	m.Nodes[0].StartBackground(0)
	boom := errors.New("boom")
	err := m.RunQuiescent(100)
	var lim ErrCycleLimit
	if !errors.As(err, &lim) {
		t.Fatalf("setup: expected plain cycle limit, got %v", err)
	}
	m.Nodes[1].Fail(boom)
	err = m.RunQuiescent(100)
	if !errors.Is(err, boom) {
		t.Fatalf("fatal masked by cycle limit: got %v", err)
	}
}

func TestWatchdogDiagReportsParkingState(t *testing.T) {
	// An idle wedge under the fast path: every node is parked awaiting
	// traffic. The diagnostic must report the parking state and each
	// registered hook's declared horizon, so a lost-wakeup wedge is
	// distinguishable from a livelock in the dump itself.
	m := MustNew(Config{DimX: 2, DimY: 1, DimZ: 1, Watchdog: 200}, trivialProg())
	m.AddCycleHook(func(int64) {}, func(now int64) int64 { return now + 1000 })
	err := m.RunWhile(func(m *Machine) bool { return true }, 1_000_000)
	var np ErrNoProgress
	if !errors.As(err, &np) {
		t.Fatalf("expected ErrNoProgress, got %v", err)
	}
	d := np.Diag
	if d.NParked == 0 || len(d.Parked) == 0 {
		t.Fatalf("idle wedge reported no parked nodes: NParked=%d", d.NParked)
	}
	for _, p := range d.Parked {
		if p.WakeAt != NoEvent {
			t.Errorf("idle node %d has a scheduled wake at %d, want NoEvent", p.Node, p.WakeAt)
		}
	}
	if len(d.Horizons) != 1 {
		t.Fatalf("got %d hook horizons, want 1", len(d.Horizons))
	}
	if h := d.Horizons[0]; h <= d.Cycle {
		t.Errorf("hook horizon %d not in the future of cycle %d", h, d.Cycle)
	}
	s := d.String()
	for _, want := range []string{"parked:", "awaiting traffic", "hook horizons:"} {
		if !strings.Contains(s, want) {
			t.Errorf("diagnostic dump missing %q:\n%s", want, s)
		}
	}
}
