// Diagnostic capture for watchdog trips: when the machine stops making
// progress the run loops snapshot where every worm, queue, and node
// stands so the wedge can be diagnosed post-mortem instead of staring
// at a cycle count.
package machine

import (
	"fmt"
	"strings"

	"jmachine/internal/mdp"
)

// RouterDiag describes one router holding stalled traffic.
type RouterDiag struct {
	Node     int
	Occupied int    // in-flight phits buffered in the router
	Outbox   [2]int // injection outbox depth per priority
}

// NodeDiag describes one node that is suspect at a watchdog trip:
// frozen, killed, fatally faulted, still busy, or holding undelivered
// queue traffic.
type NodeDiag struct {
	ID       int
	Level    int // executing level (mdp.LvlP0/LvlP1/LvlBG)
	IP       int32
	Running  bool
	Halted   bool
	Frozen   bool
	Killed   bool
	Fatal    error
	QUsed    [2]int // hardware queue fill, words
	QMsgs    [2]int // complete messages buffered
	SoftQLen int    // messages relocated to the software overflow queue
	Events   string // last few trace events, when tracing is attached
}

// ParkDiag describes one node parked by the event-horizon stepper.
type ParkDiag struct {
	Node     int
	WakeAt   int64 // next self-scheduled event (NoEvent = waits on traffic)
	NeedWake bool  // a message arrived for it but the wake is not yet consumed
}

// Diagnostic is the machine state dump attached to ErrNoProgress.
type Diagnostic struct {
	Cycle   int64
	Nodes   int
	Routers []RouterDiag // routers with in-flight or outbox traffic
	Suspect []NodeDiag
	// Parking state of the event-horizon stepper: a wedge where every
	// node is parked with WakeAt=NoEvent and no hook has a pending
	// horizon is a lost-wakeup, not a livelock.
	NParked         int
	Parked          []ParkDiag // parked nodes (capped)
	ParkedTruncated int        // parked nodes omitted from the dump
	// Horizons holds each registered cycle hook's declared next-effect
	// cycle, evaluated at Cycle (NoEvent = the hook is permanently
	// quiescent until other state changes).
	Horizons []int64
	// AllQuiet is set when no node matched the suspect heuristics — the
	// wedge is every node suspended awaiting a message that will never
	// arrive (e.g. dropped by checksum verification). Suspect then holds
	// a capped dump of every node so the report is never empty.
	AllQuiet  bool
	Truncated int // nodes omitted from the AllQuiet dump
}

// Diagnose snapshots the wedge-relevant machine state. It is cheap
// enough to call ad hoc but is intended for the watchdog path, not the
// cycle loop.
func (m *Machine) Diagnose() *Diagnostic {
	m.syncAll() // catch parked nodes up so the dump shows reference-exact state
	d := &Diagnostic{Cycle: m.cycle, Nodes: len(m.Nodes)}
	for i := range m.Nodes {
		occ := m.Net.RouterOcc(i)
		ob := [2]int{m.Net.OutboxDepth(i, 0), m.Net.OutboxDepth(i, 1)}
		if occ > 0 || ob[0] > 0 || ob[1] > 0 {
			d.Routers = append(d.Routers, RouterDiag{Node: i, Occupied: occ, Outbox: ob})
		}
	}
	for _, n := range m.Nodes {
		if !suspectNode(n) {
			continue
		}
		d.Suspect = append(d.Suspect, nodeDiag(n))
	}
	const maxParked = 16
	for i := range m.parked {
		if !m.parked[i] {
			continue
		}
		d.NParked++
		if len(d.Parked) < maxParked {
			d.Parked = append(d.Parked, ParkDiag{Node: i, WakeAt: m.wakeAt[i], NeedWake: m.needWake[i]})
		}
	}
	d.ParkedTruncated = d.NParked - len(d.Parked)
	for _, h := range m.horizons {
		d.Horizons = append(d.Horizons, h(m.cycle))
	}
	if len(d.Suspect) == 0 {
		// Every node looks idle: the machine is suspended waiting on
		// traffic that will never arrive. Dump everything (capped) so
		// the report still shows each node's resting place.
		d.AllQuiet = true
		const maxDump = 16
		for _, n := range m.Nodes {
			if len(d.Suspect) >= maxDump {
				d.Truncated = len(m.Nodes) - maxDump
				break
			}
			d.Suspect = append(d.Suspect, nodeDiag(n))
		}
	}
	return d
}

// nodeDiag snapshots one node.
func nodeDiag(n *mdp.Node) NodeDiag {
	nd := NodeDiag{
		ID:       n.ID,
		Level:    n.Level(),
		IP:       n.Ctx(n.Level()).IP,
		Running:  n.Ctx(n.Level()).Running,
		Halted:   n.Halted(),
		Frozen:   n.Frozen(),
		Killed:   n.Killed(),
		Fatal:    n.Fatal(),
		SoftQLen: n.SoftQueueLen(),
	}
	for pri := 0; pri < 2; pri++ {
		nd.QUsed[pri] = n.Queues[pri].Used()
		nd.QMsgs[pri] = n.Queues[pri].Messages()
	}
	var evs []string
	for _, e := range n.Trace.Tail(5) {
		evs = append(evs, e.String())
	}
	nd.Events = strings.Join(evs, "\n")
	return nd
}

// suspectNode reports whether a node belongs in the wedge dump: it is
// in an injected-fault state, crashed, or has work it is not retiring.
func suspectNode(n *mdp.Node) bool {
	return n.Frozen() || n.Killed() || n.Fatal() != nil ||
		(n.Busy() && !n.Halted())
}

// String renders the dump as an indented multi-line report.
func (d *Diagnostic) String() string {
	var sb strings.Builder
	if d.AllQuiet {
		fmt.Fprintf(&sb, "diagnostic at cycle %d (%d nodes): %d router(s) with stalled traffic; "+
			"all nodes idle — suspended awaiting traffic that never arrived\n",
			d.Cycle, d.Nodes, len(d.Routers))
	} else {
		fmt.Fprintf(&sb, "diagnostic at cycle %d (%d nodes): %d router(s) with stalled traffic, %d suspect node(s)\n",
			d.Cycle, d.Nodes, len(d.Routers), len(d.Suspect))
	}
	for _, r := range d.Routers {
		fmt.Fprintf(&sb, "  router n%03d: %d phit(s) in flight, outbox p0=%d p1=%d\n",
			r.Node, r.Occupied, r.Outbox[0], r.Outbox[1])
	}
	for _, n := range d.Suspect {
		var flags []string
		if n.Frozen {
			flags = append(flags, "frozen")
		}
		if n.Killed {
			flags = append(flags, "killed")
		}
		if n.Halted {
			flags = append(flags, "halted")
		}
		if n.Running {
			flags = append(flags, "running")
		} else {
			flags = append(flags, "idle")
		}
		if n.Fatal != nil {
			flags = append(flags, "fatal: "+n.Fatal.Error())
		}
		fmt.Fprintf(&sb, "  node n%03d: level=%d ip=%d [%s] q0=%dw/%dm q1=%dw/%dm softq=%d\n",
			n.ID, n.Level, n.IP, strings.Join(flags, ","),
			n.QUsed[0], n.QMsgs[0], n.QUsed[1], n.QMsgs[1], n.SoftQLen)
		if n.Events != "" {
			for _, line := range strings.Split(n.Events, "\n") {
				fmt.Fprintf(&sb, "    %s\n", line)
			}
		}
	}
	if d.Truncated > 0 {
		fmt.Fprintf(&sb, "  (%d more nodes omitted)\n", d.Truncated)
	}
	if d.NParked > 0 {
		fmt.Fprintf(&sb, "  parked: %d node(s)\n", d.NParked)
		for _, p := range d.Parked {
			wake := "awaiting traffic"
			if p.WakeAt != NoEvent {
				wake = fmt.Sprintf("wake at cycle %d", p.WakeAt)
			}
			if p.NeedWake {
				wake += ", wake pending"
			}
			fmt.Fprintf(&sb, "    node n%03d: %s\n", p.Node, wake)
		}
		if d.ParkedTruncated > 0 {
			fmt.Fprintf(&sb, "    (%d more parked nodes omitted)\n", d.ParkedTruncated)
		}
	}
	if len(d.Horizons) > 0 {
		var hs []string
		for _, h := range d.Horizons {
			if h == NoEvent {
				hs = append(hs, "none")
			} else {
				hs = append(hs, fmt.Sprintf("%d", h))
			}
		}
		fmt.Fprintf(&sb, "  hook horizons: %s\n", strings.Join(hs, ", "))
	}
	return strings.TrimRight(sb.String(), "\n")
}
