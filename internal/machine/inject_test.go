package machine_test

import (
	"testing"

	"jmachine/internal/asm"
	"jmachine/internal/isa"
	"jmachine/internal/machine"
	"jmachine/internal/word"
)

// buildInjectProgram: a handler that adds its one-word payload into an
// accumulator at address 64.
func buildInjectProgram() *asm.Program {
	b := asm.NewBuilder()
	b.Label("acc").
		MoveI(isa.A0, 64).
		Move(isa.R0, asm.Mem(isa.A3, 1)).
		Add(isa.R0, asm.Mem(isa.A0, 0)).
		St(isa.R0, asm.Mem(isa.A0, 0)).
		Suspend()
	return b.MustAssemble()
}

func TestInjectDeliversMessage(t *testing.T) {
	p := buildInjectProgram()
	m, err := machine.New(machine.GridForNodes(4), p)
	if err != nil {
		t.Fatal(err)
	}
	msg := []word.Word{word.MsgHeader(p.Entry("acc"), 2), word.Int(5)}
	for i := 0; i < 3; i++ {
		if !m.Inject(2, 0, msg) {
			t.Fatalf("inject %d refused with empty queue", i)
		}
	}
	if err := m.RunQuiescent(10_000); err != nil {
		t.Fatal(err)
	}
	w, err := m.Nodes[2].Mem.Read(64)
	if err != nil {
		t.Fatal(err)
	}
	if w.Data() != 15 {
		t.Errorf("accumulator = %d, want 15", w.Data())
	}
}

func TestInjectRejectsBadArgs(t *testing.T) {
	p := buildInjectProgram()
	m, err := machine.New(machine.GridForNodes(2), p)
	if err != nil {
		t.Fatal(err)
	}
	msg := []word.Word{word.MsgHeader(p.Entry("acc"), 2), word.Int(1)}
	for _, tc := range []struct {
		name      string
		node, pri int
		msg       []word.Word
	}{
		{"node-low", -1, 0, msg},
		{"node-high", 2, 0, msg},
		{"pri", 0, 2, msg},
		{"empty", 0, 0, nil},
	} {
		if m.Inject(tc.node, tc.pri, tc.msg) {
			t.Errorf("%s: inject accepted, want refusal", tc.name)
		}
	}
}

// TestInjectBackpressure fills a queue until Inject reports no room,
// then verifies InjectFree agrees and that draining restores capacity.
func TestInjectBackpressure(t *testing.T) {
	p := buildInjectProgram()
	m, err := machine.New(machine.GridForNodes(2), p)
	if err != nil {
		t.Fatal(err)
	}
	msg := []word.Word{word.MsgHeader(p.Entry("acc"), 2), word.Int(1)}
	n := 0
	for m.Inject(1, 0, msg) {
		n++
		if n > 10_000 {
			t.Fatal("queue never filled")
		}
	}
	if free := m.InjectFree(1, 0); free >= len(msg) {
		t.Errorf("InjectFree = %d after refusal, want < %d", free, len(msg))
	}
	if err := m.RunQuiescent(100_000); err != nil {
		t.Fatal(err)
	}
	if !m.Inject(1, 0, msg) {
		t.Error("inject still refused after drain")
	}
	if err := m.RunQuiescent(100_000); err != nil {
		t.Fatal(err)
	}
	w, _ := m.Nodes[1].Mem.Read(64)
	if w.Data() != int32(n+1) {
		t.Errorf("accumulator = %d, want %d", w.Data(), n+1)
	}
}
