// Package machine assembles a complete J-Machine: a 3-D mesh of MDP
// nodes with their memories, translation tables, and message queues, and
// a global cycle loop.
//
// The experiments in the paper ran on a 512-node machine arranged as an
// 8×8×8 mesh at 12.5 MHz; Cube(8) reproduces that configuration.
package machine

import (
	"fmt"
	"sync/atomic"

	"jmachine/internal/asm"
	"jmachine/internal/mdp"
	"jmachine/internal/mem"
	"jmachine/internal/network"
	"jmachine/internal/queue"
	"jmachine/internal/stats"
	"jmachine/internal/trace"
	"jmachine/internal/word"
	"jmachine/internal/xlate"
)

// Config describes a machine.
type Config struct {
	DimX, DimY, DimZ int
	Mem              mem.Config
	Net              network.Config // dimension fields are overridden
	MDP              mdp.Config
	QueueCap         [2]int // per-priority queue capacity in words
	XlateSets        int
	XlateWays        int
	// Watchdog arms the progress watchdog: a full window of Watchdog
	// cycles with no phit movement, no delivered words, and no
	// instruction retirement makes RunWhile/RunQuiescent return
	// ErrNoProgress with a diagnostic dump instead of running to the
	// cycle limit. 0 disables. The window should comfortably exceed the
	// network's RTSBackoff and any reliable-delivery retry timeout, or
	// a quiet backoff wait is misread as a wedge.
	Watchdog int64
}

// Cube returns the configuration of a k×k×k machine.
func Cube(k int) Config { return Config{DimX: k, DimY: k, DimZ: k} }

// Grid returns a machine of the given dimensions. The paper's speedup
// studies use machines of 1..512 nodes; non-cubic grids cover the
// intermediate sizes.
func Grid(x, y, z int) Config { return Config{DimX: x, DimY: y, DimZ: z} }

// GridForNodes returns the most cubic grid with exactly n nodes, for
// n a product of small factors (1..512). It factors n into powers of
// two and spreads them across dimensions, matching how the hardware
// partitions allocated sub-meshes. Non-positive n yields the minimal
// 1×1×1 machine rather than looping on the degenerate factorization.
func GridForNodes(n int) Config {
	if n <= 1 {
		return Config{DimX: 1, DimY: 1, DimZ: 1}
	}
	dims := [3]int{1, 1, 1}
	d := 0
	for n%2 == 0 {
		dims[d%3] *= 2
		n /= 2
		d++
	}
	for f := 3; n > 1; f += 2 {
		for n%f == 0 {
			dims[d%3] *= f
			n /= f
			d++
		}
	}
	return Config{DimX: dims[0], DimY: dims[1], DimZ: dims[2]}
}

func (c Config) withDefaults() Config {
	if c.DimX == 0 {
		c.DimX = 1
	}
	if c.DimY == 0 {
		c.DimY = 1
	}
	if c.DimZ == 0 {
		c.DimZ = 1
	}
	return c
}

// Machine is a configured J-Machine.
type Machine struct {
	Cfg   Config
	Net   *network.Network
	Nodes []*mdp.Node
	Stats *stats.Machine
	cycle int64

	// WatchdogTrips counts ErrNoProgress returns over the machine's
	// lifetime (a run loop may be re-entered after a trip).
	WatchdogTrips uint64

	cycleFns []func(cycle int64)
	stepper  Stepper
	watchdog int64
	lastSig  progressSig
	lastMove int64 // cycle at which lastSig was taken
	sigValid bool

	// Event-horizon fast path (see docs/PERF.md). A node whose next
	// event lies in the future is parked: its Step is skipped and its
	// clock and idle/stall statistics lag behind, to be caught up in
	// bulk (mdp.Node.SkipTo) when it wakes or at a sync point. When
	// every node is parked and the network is empty, whole dead windows
	// are skipped at once. The reference loop's observable state
	// sequence is preserved byte-for-byte: StateDigest, the run loops'
	// exit cycles, watchdog behaviour, and every statistic match a run
	// with the fast path off.
	fast       bool         // SetFastPath: fast path permitted
	pinned     bool         // a horizon-less cycle hook forces single-cycle mode
	parked     []bool       // node i's Step is currently being skipped
	wakeAt     []int64      // cycle at which parked node i must step again (NoEvent = external wake only)
	needWake   []bool       // external work arrived for parked node i (delivery, thaw)
	nParked    atomic.Int64 // |parked|; atomic: shards park their own slabs concurrently
	caughtUpTo int64        // cycle through which lagging nodes must catch up (cycle-1 while stepping)
	horizons   []func(now int64) int64

	// wakeSeq is a generation counter bumped whenever node activity
	// changes outside the stepping sweep itself — host injection, the
	// per-node sync hook (chaos freeze/thaw/kill, reliable-delivery
	// failures, background starts), unparkAll, checkpoint restore. The
	// parallel engine caches per-shard activity summaries and rescans
	// them whenever this generation moves.
	wakeSeq uint64

	// Compiled tier (docs/COMPILED.md). fuse is the fusion control
	// block every node reads through a pointer: the coordinator writes
	// the window limit before the processor phase of each cycle and
	// certifies network quiescence at the network/processor phase
	// boundary, both at points the engine's rendezvous orders before
	// any shard worker reads them.
	compiledOn bool
	fuse       mdp.FuseCtl

	// Send-horizon cache (see sendHorizon). A freshly computed horizon
	// stays a sound lower bound for as long as the quiet streak holds
	// and no out-of-band mutation lands: per-node bounds are
	// non-decreasing under execution (each retired instruction advances
	// the boundary floor at least as fast as the send distance falls),
	// new messages require deliveries (which break the streak), and
	// every external mutation path bumps wakeSeq. The cache therefore
	// revalidates only when the streak restarts, wakeSeq moves, or the
	// published horizon has lapsed behind the clock (retried with a
	// backoff so an unhelpful horizon does not cost an O(nodes) sweep
	// per cycle).
	hznValid bool
	hznSeq   uint64
	hznRetry int64
}

// hznRetryInterval is the recompute backoff for a lapsed send horizon.
const hznRetryInterval = 64

// NoEvent is the "no wake scheduled" horizon value (re-exported from
// mdp for hook authors): a horizon function returns it when its hook
// can never act again until re-armed by other machinery.
const NoEvent = mdp.NoEvent

// Stepper advances the machine's network and nodes through one cycle.
// The machine's built-in sequential loop is the reference
// implementation; internal/engine installs a parallel one that must be
// byte-identical to it. The stepper runs after the cycle counter has
// advanced and the cycle hooks have fired (both stay on the
// coordinating goroutine, keeping the watchdog, diagnostics, chaos
// injection, and reliable-delivery timers engine-agnostic).
type Stepper interface {
	StepCycle(m *Machine)
}

// SetStepper installs a replacement cycle stepper; nil restores the
// sequential reference loop.
func (m *Machine) SetStepper(s Stepper) { m.stepper = s }

// New builds a machine running prog on every node.
func New(cfg Config, prog *asm.Program) (*Machine, error) {
	cfg = cfg.withDefaults()
	nodes := cfg.DimX * cfg.DimY * cfg.DimZ
	if nodes <= 0 {
		return nil, fmt.Errorf("machine: invalid dimensions %d×%d×%d", cfg.DimX, cfg.DimY, cfg.DimZ)
	}
	if prog == nil || len(prog.Instrs) == 0 {
		return nil, fmt.Errorf("machine: empty program")
	}
	queues := make([][2]*queue.Queue, nodes)
	for i := range queues {
		queues[i] = [2]*queue.Queue{queue.New(cfg.QueueCap[0]), queue.New(cfg.QueueCap[1])}
	}
	netCfg := cfg.Net
	netCfg.DimX, netCfg.DimY, netCfg.DimZ = cfg.DimX, cfg.DimY, cfg.DimZ
	net, err := network.New(netCfg, queues)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		Cfg:      cfg,
		Net:      net,
		Nodes:    make([]*mdp.Node, nodes),
		Stats:    stats.NewMachine(nodes),
		watchdog: cfg.Watchdog,
		fast:     true,
		parked:   make([]bool, nodes),
		wakeAt:   make([]int64, nodes),
		needWake: make([]bool, nodes),
	}
	for i := 0; i < nodes; i++ {
		m.Nodes[i] = mdp.NewNode(i, cfg.MDP,
			mem.New(cfg.Mem), xlate.New(cfg.XlateSets, cfg.XlateWays),
			queues[i], net, prog, m.Stats.Nodes[i])
		i := i
		// Catch a parked node up under its pre-mutation flags before an
		// external actor (chaos freeze/kill, reliable-delivery failure,
		// a background start) changes them; runs on the coordinator.
		// The wake generation moves even for unparked nodes: the cached
		// send horizon (and any other activity summary) must not survive
		// an external mutation, parking aside.
		m.Nodes[i].SetSyncHook(func() {
			m.wakeSeq++
			if m.parked[i] {
				m.Nodes[i].SkipTo(m.caughtUpTo)
				m.parked[i] = false
				m.needWake[i] = false
				m.nParked.Add(-1)
			}
		})
	}
	// A word completing in a delivery queue is the one external event
	// that can make an idle node runnable without any hook firing.
	net.SetWakeFn(func(node int) { m.needWake[node] = true })
	return m, nil
}

// MustNew is New that panics on error, for statically-valid configs.
func MustNew(cfg Config, prog *asm.Program) *Machine {
	m, err := New(cfg, prog)
	if err != nil {
		panic(err)
	}
	return m
}

// NumNodes returns the node count.
func (m *Machine) NumNodes() int { return len(m.Nodes) }

// Cycle returns the global cycle count.
func (m *Machine) Cycle() int64 { return m.cycle }

// Node returns node i.
func (m *Machine) Node(i int) *mdp.Node { return m.Nodes[i] }

// SetFaultFn installs the system-software trap entry on every node.
func (m *Machine) SetFaultFn(fn mdp.FaultFn) {
	for _, n := range m.Nodes {
		n.SetFaultFn(fn)
	}
}

// EnableTrace attaches an event ring of capEvents to every node and
// returns the buffers by node id.
func (m *Machine) EnableTrace(capEvents int) []*trace.Buffer {
	out := make([]*trace.Buffer, len(m.Nodes))
	for i, n := range m.Nodes {
		out[i] = trace.New(capEvents)
		n.Trace = out[i]
	}
	return out
}

// AddCycleFn registers a hook called at the start of every machine
// cycle (before the network and the nodes step), in registration order.
//
// A hook registered this way declares no event horizon, so the machine
// must assume it can act — observe or mutate state — on any cycle:
// registration pins the machine to single-cycle mode, disabling the
// event-horizon fast path for the machine's lifetime (fidelity is
// never silently lost). Hooks that are no-ops except at predictable
// cycles should use AddCycleHook instead.
func (m *Machine) AddCycleFn(fn func(cycle int64)) {
	m.cycleFns = append(m.cycleFns, fn)
	m.pinned = true
	m.unparkAll()
}

// AddCycleHook registers a per-cycle hook together with its event
// horizon: horizon(now) returns the earliest cycle strictly after now
// at which the hook may act on (observe or mutate) machine state, or
// NoEvent when it is permanently passive until other machinery re-arms
// it. The hook still runs every simulated cycle — it must be a no-op
// off its horizon — but the machine may skip a fully-idle window up to
// (not including) the horizon without running it, so the declaration
// must be conservative. The chaos injector (next scheduled fault or
// expiry) and the reliable-delivery timer scan (next scan interval
// while messages are pending) register this way.
func (m *Machine) AddCycleHook(fn func(cycle int64), horizon func(now int64) int64) {
	m.cycleFns = append(m.cycleFns, fn)
	m.horizons = append(m.horizons, horizon)
}

// SetFastPath enables or disables the event-horizon fast path (on by
// default). Disabling it restores the literal reference loop — every
// node stepped every cycle — which the equivalence suite compares
// against. A machine pinned by AddCycleFn stays in single-cycle mode
// regardless.
func (m *Machine) SetFastPath(on bool) {
	m.fast = on
	if !on {
		m.unparkAll()
	}
}

// FastPathActive reports whether the event-horizon scheduler is
// allowed to park nodes and skip cycles (enabled and not pinned).
// internal/engine consults it before eliding empty network phases.
func (m *Machine) FastPathActive() bool { return m.fast && !m.pinned }

// SetCompiled installs (or, with nil, removes) a compiled program tier
// on every node: at each instruction boundary the node runs the
// translated closure for its current IP instead of the interpreter,
// bailing back to it for scheduler-visible operations (see
// internal/compiled and docs/COMPILED.md). The machine grants fusion
// windows bounded by the run loops' caps and every hook's event
// horizon; a pinned machine (AddCycleFn) stays single-instruction,
// which is still exact. State, statistics, digests, and traces remain
// byte-identical to interpreted runs in every mode.
func (m *Machine) SetCompiled(cp *mdp.CompiledProgram) {
	m.compiledOn = cp != nil
	m.fuse = mdp.FuseCtl{Limit: 0, QuietCycle: -1}
	m.hznValid = false
	for _, n := range m.Nodes {
		if cp == nil {
			n.SetCompiled(nil, nil)
		} else {
			n.SetCompiled(cp, &m.fuse)
		}
	}
}

// CompiledActive reports whether the compiled tier is installed.
func (m *Machine) CompiledActive() bool { return m.compiledOn }

// FusedInstructions sums the per-node count of instructions executed
// as fused (non-boundary) members of compiled windows. Diagnostic
// only — it depends on host-side scheduling and is excluded from
// digests and checkpoints — but it lets benchmarks report fusion depth
// and lets the equivalence suite prove fusion actually engaged.
func (m *Machine) FusedInstructions() int64 {
	var total int64
	for _, n := range m.Nodes {
		total += n.FusedInstructions()
	}
	return total
}

// FusionStats sums the per-node compiled-tier boundary and window
// accounting (mdp.FusionStats). Diagnostic only, like
// FusedInstructions: host-scheduling-dependent, never digest-folded.
func (m *Machine) FusionStats() mdp.FusionStats {
	var total mdp.FusionStats
	for _, n := range m.Nodes {
		total.Add(n.FusionStats())
	}
	return total
}

// publishFuseLimit grants the upcoming cycles' fusion window: fused
// instruction boundaries may extend to min(limit, every hook horizon
// minus one). A pinned machine's hooks may observe state on any cycle,
// so the window degenerates to the next cycle (single-instruction
// compiled execution, exact per boundary).
func (m *Machine) publishFuseLimit(limit int64) {
	if !m.compiledOn {
		return
	}
	if m.pinned {
		m.fuse.Limit = m.cycle + 1
		return
	}
	for _, h := range m.horizons {
		if hz := h(m.cycle); hz-1 < limit {
			limit = hz - 1
		}
	}
	m.fuse.Limit = limit
}

// PublishNetQuiet certifies, for the cycle being stepped, that the
// network held no phits or outbox messages at the network/processor
// phase boundary — the quiet fusion rule's precondition. The
// sequential loop calls it between the network and processor phases;
// the engine calls it from the coordinator (empty-mesh cycles) or from
// shard 0 inside the commit phase, so every worker observes the same
// deterministic certification.
func (m *Machine) PublishNetQuiet() {
	if !m.compiledOn {
		return
	}
	if !m.Net.Quiet() {
		m.fuse.QuietCycle = -1
		m.hznValid = false // traffic in flight: the streak is broken
		return
	}
	m.fuse.QuietCycle = m.cycle
	// Publish the send horizon alongside the certification: the earliest
	// cycle at which any node could inject, per the send-distance
	// certificates. Cached across the quiet streak (see the field
	// comment); a lapsed horizon is retried with a backoff because a
	// node within an instruction of sending will usually break the
	// streak itself.
	if !m.hznValid || m.hznSeq != m.wakeSeq ||
		(m.fuse.SendHorizon <= m.cycle && m.cycle >= m.hznRetry) {
		m.fuse.SendHorizon = m.sendHorizon()
		m.hznValid = true
		m.hznSeq = m.wakeSeq
		m.hznRetry = m.cycle + hznRetryInterval
	}
}

// sendHorizon folds mdp.Node.SendBound over the mesh: the earliest
// cycle at which any node could inject a message, given a quiet
// network. Stops scanning once the bound cannot exceed the current
// cycle (no fusion benefit remains).
func (m *Machine) sendHorizon() int64 {
	best := mdp.NoEvent
	for _, n := range m.Nodes {
		if b := n.SendBound(); b < best {
			best = b
			if best <= m.cycle {
				break
			}
		}
	}
	return best
}

// SetWatchdog arms (or, with 0, disarms) the progress watchdog after
// construction — used when the machine was built by an application's
// Run helper rather than directly from a Config.
func (m *Machine) SetWatchdog(window int64) {
	m.watchdog = window
	m.sigValid = false
}

// Inject delivers a complete message — header word first, body after —
// into node i's priority-pri queue directly from the host, bypassing
// the mesh. It models the external network interface a service front
// door would drive and must be called between cycles on the
// coordinating goroutine (never from inside a hook or while an engine
// cycle is in flight). The injected words enter the same hardware
// queue mesh deliveries use, so dispatch, queue back-pressure, and the
// state digest behave exactly as if the message had arrived by wire.
// Reports false — and injects nothing — when the queue lacks room for
// the whole message; the caller should step the machine to drain the
// queue and retry.
func (m *Machine) Inject(node, pri int, msg []word.Word) bool {
	if node < 0 || node >= len(m.Nodes) || pri < 0 || pri > 1 || len(msg) == 0 {
		return false
	}
	q := m.Nodes[node].Queues[pri]
	if q.Free() < len(msg) {
		return false
	}
	for _, w := range msg {
		q.Push(w)
	}
	// A parked node must notice host-delivered work exactly as it
	// notices a mesh delivery.
	m.needWake[node] = true
	m.wakeSeq++
	return true
}

// InjectFree returns how many words of room node i's priority-pri
// queue currently has for host injection.
func (m *Machine) InjectFree(node, pri int) int {
	if node < 0 || node >= len(m.Nodes) || pri < 0 || pri > 1 {
		return 0
	}
	return m.Nodes[node].Queues[pri].Free()
}

// Step advances the whole machine one cycle: the network moves phits,
// then each node executes. The public single-step is reference-exact:
// any nodes the fast path left parked are unparked and caught up
// first, so after every Step the caller observes the same per-node
// state the reference loop would show. (Bulk stepping that may park —
// StepN and the run loops — re-synchronizes before returning instead.)
func (m *Machine) Step() {
	m.unparkAll()
	if m.compiledOn {
		m.fuse.Limit = m.cycle + 1 // single-instruction boundaries only
	}
	m.stepOnce()
}

// stepOnce advances one cycle honouring the active set: parked nodes
// are not stepped, and the network phase is elided while the mesh is
// empty (an empty-mesh Step touches nothing but the cycle counter).
func (m *Machine) stepOnce() {
	m.cycle++
	m.caughtUpTo = m.cycle - 1
	for _, fn := range m.cycleFns {
		fn(m.cycle)
	}
	if m.stepper != nil {
		m.stepper.StepCycle(m)
		m.caughtUpTo = m.cycle
		return
	}
	if m.FastPathActive() && m.Net.Quiet() {
		m.Net.SkipCycles(1)
	} else {
		m.Net.Step()
	}
	m.PublishNetQuiet()
	m.StepNodeRange(0, len(m.Nodes))
	m.caughtUpTo = m.cycle
}

// StepNodeRange steps nodes [lo, hi) through the current cycle,
// maintaining the active set: a parked node is skipped until its wake
// cycle (or an external wake flag) comes due, at which point it is
// caught up in bulk and stepped; a node whose next event lies beyond
// the next cycle is parked. Both the sequential loop and the parallel
// engine's processor phase use it — under the engine each shard calls
// it for its own slab, so the bookkeeping for index i is only ever
// touched by i's owning goroutine (nParked, the one shared counter, is
// atomic).
func (m *Machine) StepNodeRange(lo, hi int) { m.StepNodeRangeInfo(lo, hi) }

// StepNodeRangeInfo is StepNodeRange returning an activity summary for
// the range, computed in the same sweep: live is the number of nodes
// left unparked, minWake the earliest wake cycle among the parked ones
// (NoEvent when none is scheduled). The parallel engine caches these
// per shard to decide which slabs the next cycle can skip.
func (m *Machine) StepNodeRangeInfo(lo, hi int) (live int, minWake int64) {
	fast := m.FastPathActive()
	cycle := m.cycle
	minWake = NoEvent
	// Park/unpark deltas batch into one atomic update per call — the
	// shared counter is only read between processor phases (advance,
	// syncAll, unparkAll), never while a slab is mid-step.
	parkDelta := int64(0)
	for i := lo; i < hi; i++ {
		if m.parked[i] {
			if !m.needWake[i] && cycle < m.wakeAt[i] {
				if m.wakeAt[i] < minWake {
					minWake = m.wakeAt[i]
				}
				continue
			}
			m.Nodes[i].SkipTo(cycle - 1)
			m.parked[i] = false
			m.needWake[i] = false
			parkDelta--
		}
		n := m.Nodes[i]
		n.Step()
		if fast {
			if ne := n.NextEvent(); ne > cycle+1 {
				m.parked[i] = true
				m.wakeAt[i] = ne
				m.needWake[i] = false
				parkDelta++
				if ne < minWake {
					minWake = ne
				}
				continue
			}
		}
		live++
	}
	if parkDelta != 0 {
		m.nParked.Add(parkDelta)
	}
	return live, minWake
}

// NodeActivity summarizes nodes [lo, hi) without stepping anything:
// live counts unparked nodes plus parked ones with a pending external
// wake, minWake is the earliest scheduled wake among the rest (NoEvent
// when none). Used by the engine to rebuild its per-shard activity
// cache after an out-of-band change (WakeSeq moved).
func (m *Machine) NodeActivity(lo, hi int) (live int, minWake int64) {
	minWake = NoEvent
	for i := lo; i < hi; i++ {
		if !m.parked[i] || m.needWake[i] {
			live++
			continue
		}
		if m.wakeAt[i] < minWake {
			minWake = m.wakeAt[i]
		}
	}
	return live, minWake
}

// WakeSeq returns the out-of-band activity generation (see wakeSeq).
func (m *Machine) WakeSeq() uint64 { return m.wakeSeq }

// advance moves the machine forward at least one cycle, but never past
// limit. When every node is parked and the network is empty — nothing
// in the machine can change except cycle counters — the whole dead
// window up to the nearest of limit, the earliest hook horizon, and
// the earliest node wake is consumed in one jump; otherwise one real
// cycle is stepped. Callers cap limit at their own check boundaries
// (budget, watchdog cadence, quiescence probe) so every check still
// happens at exactly the cycle the reference loop would perform it.
func (m *Machine) advance(limit int64) {
	if m.FastPathActive() && m.nParked.Load() == int64(len(m.Nodes)) && m.Net.Quiet() {
		if t := m.skipTarget(limit); t > m.cycle {
			m.Net.SkipCycles(t - m.cycle)
			m.cycle = t
			m.caughtUpTo = t
			if m.cycle >= limit {
				return
			}
		}
	}
	m.publishFuseLimit(limit)
	m.stepOnce()
}

// skipTarget returns the latest cycle the machine may jump to from a
// fully-parked, network-quiet state: capped by limit, by every hook's
// event horizon (exclusive — the hook must run normally on its horizon
// cycle), and by every parked node's wake cycle (exclusive — the wake
// cycle itself is stepped so live state, e.g. a retiring stall, tracks
// the reference loop).
func (m *Machine) skipTarget(limit int64) int64 {
	t := limit
	for _, h := range m.horizons {
		if hz := h(m.cycle); hz-1 < t {
			t = hz - 1
		}
	}
	for i := range m.parked {
		if m.needWake[i] {
			return m.cycle // pending external wake: step normally
		}
		if w := m.wakeAt[i]; w-1 < t {
			t = w - 1
		}
	}
	return t
}

// syncAll catches every parked node up to the current cycle (charging
// its skipped idle/stall cycles) without unparking it. Run-loop exits,
// StateDigest, and Diagnose call it so externally-visible state always
// matches the reference loop.
func (m *Machine) syncAll() {
	if m.nParked.Load() == 0 {
		return
	}
	for i, n := range m.Nodes {
		if m.parked[i] {
			n.SkipTo(m.caughtUpTo)
		}
	}
}

// unparkAll returns every parked node to the active set, caught up.
// Used at reference-exact boundaries: the public Step, bulk-step
// entry (external callers may have mutated node state — pushed a
// queue word, written memory — without any wake signal), pinning, and
// SetFastPath(false).
func (m *Machine) unparkAll() {
	if m.nParked.Load() == 0 {
		return
	}
	for i, n := range m.Nodes {
		if m.parked[i] {
			n.SkipTo(m.caughtUpTo)
			m.parked[i] = false
			m.needWake[i] = false
		}
	}
	m.nParked.Store(0)
	m.wakeSeq++
}

// StateDigest folds the machine's complete dynamic state — cycle
// counter, network (routers, in-flight worms, outboxes, stats), and
// every node's architectural state, memory, queues, and statistics —
// into a 64-bit digest. Two runs with equal digests are in
// byte-identical states; the engine equivalence suite compares
// sequential and sharded runs with it.
func (m *Machine) StateDigest() uint64 {
	m.syncAll()
	h := uint64(0xcbf29ce484222325) ^ uint64(m.cycle)
	h ^= m.Net.StateDigest()
	h *= 0x100000001b3
	h ^= m.WatchdogTrips
	for _, n := range m.Nodes {
		h = n.StateDigest(h)
	}
	return h
}

// StepN advances n cycles. Unlike n calls to Step, dead windows inside
// the batch are skipped in bulk; the machine is fully re-synchronized
// before returning, so the final state is reference-exact.
func (m *Machine) StepN(n int64) {
	m.unparkAll()
	target := m.cycle + n
	for m.cycle < target {
		m.advance(target)
	}
	m.syncAll()
}

// ErrCycleLimit is returned when a run exceeds its cycle budget.
type ErrCycleLimit struct {
	Limit int64
}

func (e ErrCycleLimit) Error() string {
	return fmt.Sprintf("machine: exceeded cycle limit %d", e.Limit)
}

// ErrNoProgress is returned by the run loops when the progress watchdog
// observes a full window with no phit movement, no delivered words, and
// no instruction retirement anywhere in the machine — a wedge (blocked
// worms, a livelocked protocol, every node suspended awaiting a lost
// message) rather than a slow computation. Diag carries the machine
// state at the trip for post-mortem.
type ErrNoProgress struct {
	Cycle  int64 // machine cycle at the trip
	Window int64 // configured watchdog window
	Diag   *Diagnostic
}

func (e ErrNoProgress) Error() string {
	s := fmt.Sprintf("machine: no progress for %d cycles (at cycle %d)", e.Window, e.Cycle)
	if e.Diag != nil {
		s += "\n" + e.Diag.String()
	}
	return s
}

// progressSig summarizes everything the watchdog counts as forward
// progress. Faults are included so fault-service storms (which retire
// no instructions) do not read as a wedge.
type progressSig struct {
	instrs    uint64
	threads   uint64
	faults    uint64
	phitHops  uint64
	delivered uint64
	returned  uint64
}

// ProgressCounters is the watchdog's forward-progress signature in
// exported form: everything the machine counts as evidence of life.
// Observability snapshots report it so a live tail shows the same
// signal the watchdog trips on.
type ProgressCounters struct {
	Instrs    uint64 `json:"instrs"`
	Threads   uint64 `json:"threads"`
	Faults    uint64 `json:"faults"`
	PhitHops  uint64 `json:"phit_hops"`
	Delivered uint64 `json:"delivered_words"`
	Returned  uint64 `json:"returned_msgs"`
}

// Progress returns the machine-wide forward-progress counters the
// watchdog compares between windows. The scan is O(nodes).
func (m *Machine) Progress() ProgressCounters {
	s := m.progress()
	return ProgressCounters{
		Instrs:    s.instrs,
		Threads:   s.threads,
		Faults:    s.faults,
		PhitHops:  s.phitHops,
		Delivered: s.delivered,
		Returned:  s.returned,
	}
}

func (m *Machine) progress() progressSig {
	var s progressSig
	for _, n := range m.Stats.Nodes {
		s.instrs += n.Instrs
		s.threads += n.Threads
		s.faults += n.SendFaults + n.XlateFaults + n.CfutFaults + n.OverflowFaults
	}
	ns := m.Net.Stats()
	s.phitHops = ns.PhitHops
	s.delivered = ns.DeliveredWords[0] + ns.DeliveredWords[1]
	s.returned = ns.ReturnedMsgs + ns.Retransmits + ns.DroppedMsgs + ns.CorruptDrops + ns.DupDrops
	return s
}

// checkWatchdog compares the progress signature against the last
// snapshot; a full unchanged window returns ErrNoProgress. The scan is
// O(nodes), so callers run it at the watchdog cadence, not per cycle.
func (m *Machine) checkWatchdog() error {
	if m.watchdog <= 0 {
		return nil
	}
	if !m.sigValid {
		m.lastSig, m.lastMove, m.sigValid = m.progress(), m.cycle, true
		return nil
	}
	if m.cycle-m.lastMove < m.watchdog {
		return nil
	}
	sig := m.progress()
	if sig != m.lastSig {
		m.lastSig, m.lastMove = sig, m.cycle
		return nil
	}
	m.WatchdogTrips++
	m.sigValid = false
	return ErrNoProgress{Cycle: m.cycle, Window: m.watchdog, Diag: m.Diagnose()}
}

// RunWhile steps the machine while cond holds, up to max cycles, and
// surfaces any node's fatal fault or a watchdog trip. The fatal and
// watchdog scans run periodically to stay off the per-cycle critical
// path.
//
// Under the event-horizon fast path, bulk skips are capped at the
// budget boundary and at the 256-cycle fatal/watchdog cadence, so
// every check — and any resulting error — happens at exactly the cycle
// the single-stepping loop would produce it. During a skipped window
// nothing observable changes, so cond (which the reference loop
// evaluates every cycle) is constant across it — except for the cycle
// counter itself: a cond that reads m.Cycle() observes it at a coarser
// granularity (it still never overshoots a boundary or the budget).
func (m *Machine) RunWhile(cond func(*Machine) bool, max int64) error {
	start := m.cycle
	m.sigValid = false
	m.unparkAll()
	defer m.syncAll()
	for cond(m) {
		if m.cycle-start >= max {
			if err := m.FatalErr(); err != nil {
				return err
			}
			return ErrCycleLimit{Limit: max}
		}
		limit := start + max
		if b := (m.cycle | 0xFF) + 1; b < limit {
			limit = b
		}
		m.advance(limit)
		if m.cycle&0xFF == 0 {
			if err := m.FatalErr(); err != nil {
				return err
			}
			if err := m.checkWatchdog(); err != nil {
				return err
			}
		}
	}
	return m.FatalErr()
}

// RunUntilHalt runs until node id halts (the applications' driver node
// executes HALT when the computation completes).
func (m *Machine) RunUntilHalt(id int, max int64) error {
	return m.RunWhile(func(m *Machine) bool { return !m.Nodes[id].Halted() }, max)
}

// RunQuiescent runs until no node is busy and the network is drained.
// The quiescence test runs every probe cycles (default 8) to keep the
// scan off the critical path. A node fatal takes precedence over the
// cycle limit so a crash inside the final budget window is not masked
// as a timeout.
func (m *Machine) RunQuiescent(max int64) error {
	const probe = 8
	start := m.cycle
	m.sigValid = false
	m.unparkAll()
	defer m.syncAll()
	for {
		if m.Quiescent() {
			return nil
		}
		if m.cycle-start >= max {
			if err := m.FatalErr(); err != nil {
				return err
			}
			return ErrCycleLimit{Limit: max}
		}
		// One probe batch. Bulk skips are capped at the batch boundary,
		// keeping the quiescence/fatal/watchdog checks on the same
		// start+8k cycles as the single-stepping loop.
		target := m.cycle + probe
		for m.cycle < target {
			m.advance(target)
		}
		if err := m.FatalErr(); err != nil {
			return err
		}
		if err := m.checkWatchdog(); err != nil {
			return err
		}
	}
}

// Quiescent reports whether no node has work and no traffic is in flight.
func (m *Machine) Quiescent() bool {
	if m.Net.Pending() {
		return false
	}
	for _, n := range m.Nodes {
		if n.Busy() {
			return false
		}
	}
	return true
}

// FatalErr returns the first node fatal error, if any.
func (m *Machine) FatalErr() error {
	for _, n := range m.Nodes {
		if err := n.Fatal(); err != nil {
			return fmt.Errorf("node %d: %w", n.ID, err)
		}
	}
	return nil
}
