package machine

import (
	"errors"
	"testing"

	"jmachine/internal/asm"
	"jmachine/internal/isa"
	"jmachine/internal/trace"
)

func trivialProg() *asm.Program {
	b := asm.NewBuilder()
	b.Label("main").Halt()
	return b.MustAssemble()
}

func TestGridForNodes(t *testing.T) {
	cases := map[int][3]int{
		1:   {1, 1, 1},
		2:   {2, 1, 1},
		4:   {2, 2, 1},
		8:   {2, 2, 2},
		16:  {4, 2, 2},
		64:  {4, 4, 4},
		512: {8, 8, 8},
		96:  {4, 4, 6}, // 2^5 * 3
	}
	for n, want := range cases {
		cfg := GridForNodes(n)
		if cfg.DimX*cfg.DimY*cfg.DimZ != n {
			t.Errorf("GridForNodes(%d) = %dx%dx%d", n, cfg.DimX, cfg.DimY, cfg.DimZ)
		}
		got := [3]int{cfg.DimX, cfg.DimY, cfg.DimZ}
		if got != want {
			t.Errorf("GridForNodes(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestNewRejectsEmptyProgram(t *testing.T) {
	if _, err := New(Cube(2), nil); err == nil {
		t.Error("nil program accepted")
	}
	empty := asm.NewBuilder().MustAssemble()
	if _, err := New(Cube(2), empty); err == nil {
		t.Error("empty program accepted")
	}
}

func TestRunUntilHaltAndCycleLimit(t *testing.T) {
	m := MustNew(Grid(1, 1, 1), trivialProg())
	m.Nodes[0].StartBackground(0)
	if err := m.RunUntilHalt(0, 100); err != nil {
		t.Fatal(err)
	}
	if m.Cycle() != 1 {
		t.Errorf("halt took %d cycles", m.Cycle())
	}

	// A node that never halts trips the cycle limit.
	b := asm.NewBuilder()
	b.Label("main").Br("main")
	p := b.MustAssemble()
	m2 := MustNew(Grid(1, 1, 1), p)
	m2.Nodes[0].StartBackground(0)
	err := m2.RunUntilHalt(0, 50)
	var lim ErrCycleLimit
	if !errors.As(err, &lim) {
		t.Fatalf("expected cycle limit, got %v", err)
	}
}

func TestQuiescence(t *testing.T) {
	m := MustNew(Cube(2), trivialProg())
	if !m.Quiescent() {
		t.Error("idle machine not quiescent")
	}
	if err := m.RunQuiescent(100); err != nil {
		t.Fatal(err)
	}
}

func TestFatalSurfacesNodeError(t *testing.T) {
	// A program that reads a cfut with no fault handler is fatal.
	b := asm.NewBuilder()
	b.Label("main").
		MoveI(isa.A0, 64).
		I(isa.MOVE, isa.R0, asm.Mem(isa.A0, 0)).
		Halt()
	p := b.MustAssemble()
	m := MustNew(Grid(1, 1, 1), p)
	m.Nodes[0].Mem.FillCfut(64, 1)
	m.Nodes[0].StartBackground(0)
	if err := m.RunUntilHalt(0, 1000); err == nil {
		t.Error("fatal fault not surfaced")
	}
}

func TestStepNAdvances(t *testing.T) {
	m := MustNew(Grid(2, 1, 1), trivialProg())
	m.StepN(25)
	if m.Cycle() != 25 {
		t.Errorf("cycle = %d", m.Cycle())
	}
	for _, n := range m.Nodes {
		if n.Cycle() != 25 {
			t.Errorf("node cycle = %d", n.Cycle())
		}
	}
}

func TestTraceRecordsMachineEvents(t *testing.T) {
	// Trace a send/dispatch/suspend round trip between two nodes.
	b2 := asm.NewBuilder()
	b2.Label("main").
		MoveI(isa.A0, 64).
		I(isa.SEND, 0, asm.Mem(isa.A0, 0)).
		MoveHdr(isa.R1, "sink", 1).
		I(isa.SENDE, 0, asm.R(isa.R1)).
		Halt()
	b2.Label("sink").I(isa.SUSPEND, 0, asm.Imm(0))
	p := b2.MustAssemble()
	m := MustNew(Grid(2, 1, 1), p)
	bufs := m.EnableTrace(64)
	m.Nodes[0].Mem.Write(64, m.Net.NodeWord(1))
	m.Nodes[0].StartBackground(p.Entry("main"))
	if err := m.RunUntilHalt(0, 1000); err != nil {
		t.Fatal(err)
	}
	if err := m.RunQuiescent(1000); err != nil {
		t.Fatal(err)
	}
	sends := bufs[0].Filter(trace.Send)
	if len(sends) != 1 || sends[0].A != 1 {
		t.Errorf("sends = %v", sends)
	}
	disp := bufs[1].Filter(trace.Dispatch)
	if len(disp) != 1 || disp[0].A != p.Entry("sink") {
		t.Errorf("dispatches = %v", disp)
	}
	if len(bufs[1].Filter(trace.Suspend)) != 1 {
		t.Error("suspend not traced")
	}
}
