package machine

// Tests for the event-horizon fast path: the active set, the wake
// calendar, bulk idle skip, and — above all — byte-identical state
// versus the every-node-every-cycle reference loop. The engine package
// re-proves the same contract at workload scale; these tests pin the
// mechanism at machine scale where individual parks are visible.

import (
	"testing"

	"jmachine/internal/asm"
	"jmachine/internal/isa"
	"jmachine/internal/word"
)

// busyIdleProg: "main" spins a counted loop then halts; nodes that are
// never started stay idle and should park.
func busyIdleProg(iters int32) *asm.Program {
	b := asm.NewBuilder()
	b.Label("main").
		MoveI(isa.R0, iters).
		Label("loop").
		Sub(isa.R0, asm.Imm(1)).
		Bt(isa.R0, "loop").
		Halt()
	return b.MustAssemble()
}

// refPair builds two identical machines, one with the fast path
// disabled (the reference), one with it on (the default).
func refPair(t *testing.T, nodes int, p *asm.Program) (ref, fast *Machine) {
	t.Helper()
	var err error
	if ref, err = New(GridForNodes(nodes), p); err != nil {
		t.Fatal(err)
	}
	ref.SetFastPath(false)
	if fast, err = New(GridForNodes(nodes), p); err != nil {
		t.Fatal(err)
	}
	return ref, fast
}

// compareState requires the two machines to agree on clock and digest.
func compareState(t *testing.T, label string, ref, fast *Machine) {
	t.Helper()
	if ref.Cycle() != fast.Cycle() {
		t.Errorf("%s: cycle %d (reference) vs %d (fast path)", label, ref.Cycle(), fast.Cycle())
	}
	if rd, fd := ref.StateDigest(), fast.StateDigest(); rd != fd {
		t.Errorf("%s: digest %#x (reference) vs %#x (fast path)", label, rd, fd)
	}
}

func TestFastPathDigestEquivalence(t *testing.T) {
	p := busyIdleProg(40)
	ref, fast := refPair(t, 8, p)
	for _, m := range []*Machine{ref, fast} {
		m.Nodes[0].StartBackground(p.Entry("main"))
		m.Nodes[5].StartBackground(p.Entry("main"))
	}
	// Compare at several boundaries: mid-compute, just after the halts,
	// and deep into the all-idle tail where the fast path skips in bulk.
	for _, span := range []int64{17, 100, 5000} {
		ref.StepN(span)
		fast.StepN(span)
		compareState(t, "StepN", ref, fast)
	}
}

func TestFastPathGlobalSkip(t *testing.T) {
	// Nothing ever starts: after the first cycle every node parks and
	// StepN crosses the whole span in a handful of stepped cycles.
	p := busyIdleProg(1)
	ref, fast := refPair(t, 8, p)
	ref.StepN(10_000)
	fast.StepN(10_000)
	compareState(t, "all-idle", ref, fast)
	if got := fast.nParked.Load(); got != int64(len(fast.Nodes)) {
		t.Errorf("parked %d of %d nodes", got, len(fast.Nodes))
	}
	if fast.Cycle() != 10_000 {
		t.Errorf("cycle = %d, want 10000", fast.Cycle())
	}
}

func TestAddCycleFnPinsSingleCycleMode(t *testing.T) {
	m, err := New(GridForNodes(4), busyIdleProg(1))
	if err != nil {
		t.Fatal(err)
	}
	if !m.FastPathActive() {
		t.Fatal("fast path should be on by default")
	}
	var calls int64
	m.AddCycleFn(func(cycle int64) { calls++ })
	if m.FastPathActive() {
		t.Error("legacy per-cycle hook did not pin the machine")
	}
	m.StepN(500)
	if calls != 500 {
		t.Errorf("pinned hook ran %d times over 500 cycles", calls)
	}
}

func TestAddCycleHookHonoursCadence(t *testing.T) {
	m, err := New(GridForNodes(4), busyIdleProg(1))
	if err != nil {
		t.Fatal(err)
	}
	const cadence = 100
	var fired []int64
	var stepped int64
	m.AddCycleHook(
		func(cycle int64) {
			stepped++
			if cycle%cadence == 0 {
				fired = append(fired, cycle)
			}
		},
		func(now int64) int64 { return (now/cadence + 1) * cadence },
	)
	if !m.FastPathActive() {
		t.Fatal("a horizon-aware hook must not pin the machine")
	}
	m.StepN(1000)
	want := []int64{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
	if len(fired) != len(want) {
		t.Fatalf("hook acted at cycles %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("hook acted at cycles %v, want %v", fired, want)
		}
	}
	// The machine is idle: nearly every inter-boundary cycle should have
	// been skipped rather than stepped.
	if stepped > 100 {
		t.Errorf("hook saw %d stepped cycles over a 1000-cycle idle span", stepped)
	}
}

func TestExternalQueuePushWakesParkedNode(t *testing.T) {
	p := busyIdleProg(1)
	m, err := New(GridForNodes(4), p)
	if err != nil {
		t.Fatal(err)
	}
	m.StepN(1000) // everything parks
	if got := m.nParked.Load(); got != int64(len(m.Nodes)) {
		t.Fatalf("parked %d of %d nodes", got, len(m.Nodes))
	}
	// A test-style external mutation: a message pushed straight into a
	// node's hardware queue, with no wake signal from the network.
	m.Nodes[2].Queues[0].Push(word.MsgHeader(p.Entry("main"), 1))
	m.StepN(100)
	if !m.Nodes[2].Halted() {
		t.Error("parked node never dispatched the externally pushed message")
	}
}

func TestSetFastPathOffKeepsEveryNodeLive(t *testing.T) {
	m, err := New(GridForNodes(4), busyIdleProg(1))
	if err != nil {
		t.Fatal(err)
	}
	m.SetFastPath(false)
	if m.FastPathActive() {
		t.Fatal("SetFastPath(false) ignored")
	}
	m.StepN(200)
	if got := m.nParked.Load(); got != 0 {
		t.Errorf("reference mode parked %d nodes", got)
	}
}

func TestFastPathWatchdogTripsAtReferenceCycle(t *testing.T) {
	// A machine with work wedged behind a frozen node: the watchdog must
	// trip at the same cycle whether or not idle spans are skipped.
	p := busyIdleProg(1)
	trip := func(fastOn bool) (int64, error) {
		m, err := New(GridForNodes(4), p)
		if err != nil {
			t.Fatal(err)
		}
		m.SetFastPath(fastOn)
		m.SetWatchdog(1000)
		m.Nodes[1].SetFrozen(true)
		m.Nodes[1].Queues[0].Push(word.MsgHeader(p.Entry("main"), 1))
		err = m.RunQuiescent(50_000)
		return m.Cycle(), err
	}
	refCycle, refErr := trip(false)
	fastCycle, fastErr := trip(true)
	if refCycle != fastCycle {
		t.Errorf("watchdog tripped at cycle %d (reference) vs %d (fast path)", refCycle, fastCycle)
	}
	if (refErr == nil) != (fastErr == nil) {
		t.Errorf("errors diverged: %v vs %v", refErr, fastErr)
	}
}
