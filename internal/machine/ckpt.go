// Checkpoint serialization for the whole machine: the cycle counter,
// watchdog state, event-horizon parking state, the network, and every
// node. internal/ckpt frames this section, adds the subsystem sections
// (rt, chaos), and handles file I/O; the encoding here is what makes a
// restored machine digest-identical to the captured one.
package machine

import (
	"fmt"
	"sort"

	"jmachine/internal/ckpt/wire"
)

// ckptFormat guards the machine-section layout; bump when the encoding
// below changes shape.
const ckptFormat = 1

// SnapshotCycle returns the cycle a snapshot taken now represents: the
// cycle through which all state is consistent. Between run loops this
// is simply the machine cycle; while a cycle hook for cycle C runs it
// is C-1 — nothing of cycle C has touched network or node state yet
// (hook-owned state like retransmit deadlines or a chaos cursor lives
// in the hooks' own sections, and re-running a hook at C over restored
// state is a no-op by the horizon contract), so a restored machine
// re-enters cycle C and replays it exactly.
func (m *Machine) SnapshotCycle() int64 { return m.caughtUpTo }

// SnapshotDigest returns the StateDigest the machine will report
// immediately after a snapshot taken now is restored: the digest
// evaluated at the snapshot cycle, which differs from Cycle() only
// while a cycle hook is executing.
func (m *Machine) SnapshotDigest() uint64 {
	saved := m.cycle
	m.cycle = m.caughtUpTo
	h := m.StateDigest()
	m.cycle = saved
	return h
}

// progFingerprint folds the program's shape — instruction count, code
// image size, and the sorted label table — so a checkpoint cannot be
// restored into a machine running different code.
func (m *Machine) progFingerprint() uint64 {
	p := m.Nodes[0].Prog
	h := uint64(0xcbf29ce484222325)
	mix := func(v uint64) {
		h ^= v
		h *= 0x100000001b3
		h ^= h >> 29
	}
	mix(uint64(len(p.Instrs)))
	mix(uint64(p.Image.Len()))
	labels := make([]string, 0, len(p.Labels))
	for name := range p.Labels { //jm:maporder keys are collected then sorted before mixing; order cannot leak
		labels = append(labels, name)
	}
	sort.Strings(labels)
	for _, name := range labels {
		for _, b := range []byte(name) {
			mix(uint64(b))
		}
		mix(uint64(uint32(p.Labels[name])))
	}
	return h
}

// SaveState serializes the machine section: configuration fingerprint
// (verified on restore), cycle and watchdog state, the event-horizon
// parking state, the network, and every node. Parked nodes are synced
// (their lagging clocks and idle statistics caught up, without
// unparking) first, so the encoded per-node state is reference-exact.
func (m *Machine) SaveState(e *wire.Encoder) {
	m.syncAll()
	e.U32(ckptFormat)
	e.Int(m.Cfg.DimX)
	e.Int(m.Cfg.DimY)
	e.Int(m.Cfg.DimZ)
	e.U64(m.progFingerprint())
	e.I64(m.SnapshotCycle())
	e.U64(m.WatchdogTrips)
	e.Bool(m.sigValid)
	e.I64(m.lastMove)
	for _, v := range [...]uint64{m.lastSig.instrs, m.lastSig.threads, m.lastSig.faults,
		m.lastSig.phitHops, m.lastSig.delivered, m.lastSig.returned} {
		e.U64(v)
	}
	for i := range m.parked {
		e.Bool(m.parked[i])
		e.I64(m.wakeAt[i])
		e.Bool(m.needWake[i])
	}
	m.Net.SaveState(e)
	for _, n := range m.Nodes {
		n.SaveState(e)
	}
	e.U64(m.SnapshotDigest())
}

// RestoreState rebuilds the machine from a checkpoint taken by a
// machine with identical configuration (dimensions, memory and queue
// geometry, program). It must be called between cycles — after the
// machine and its layers (runtime, reliable delivery, chaos, engine)
// are attached and the workload's start-up writes have run, before the
// run loop starts. On success the machine's StateDigest equals the
// digest recorded at capture; any mismatch (or any malformed input) is
// an error and the machine must be discarded.
func (m *Machine) RestoreState(d *wire.Decoder) error {
	if f := d.U32(); f != ckptFormat {
		return fmt.Errorf("machine: checkpoint section format %d, want %d", f, ckptFormat)
	}
	dx, dy, dz := d.Int(), d.Int(), d.Int()
	if dx != m.Cfg.DimX || dy != m.Cfg.DimY || dz != m.Cfg.DimZ {
		return fmt.Errorf("machine: checkpoint mesh %d×%d×%d != configured %d×%d×%d",
			dx, dy, dz, m.Cfg.DimX, m.Cfg.DimY, m.Cfg.DimZ)
	}
	if fp := d.U64(); fp != m.progFingerprint() {
		return fmt.Errorf("machine: checkpoint program fingerprint %016x != running program %016x",
			fp, m.progFingerprint())
	}
	cycle := d.I64()
	if cycle < 0 {
		return fmt.Errorf("machine: negative checkpoint cycle %d", cycle)
	}
	m.cycle = cycle
	m.caughtUpTo = cycle
	m.WatchdogTrips = d.U64()
	m.sigValid = d.Bool()
	m.lastMove = d.I64()
	m.lastSig = progressSig{
		instrs: d.U64(), threads: d.U64(), faults: d.U64(),
		phitHops: d.U64(), delivered: d.U64(), returned: d.U64(),
	}
	nParked := int64(0)
	for i := range m.parked {
		m.parked[i] = d.Bool()
		m.wakeAt[i] = d.I64()
		m.needWake[i] = d.Bool()
		if m.parked[i] {
			nParked++
		}
	}
	m.nParked.Store(nParked)
	m.wakeSeq++ // engine activity caches are stale for the restored state
	if err := d.Err(); err != nil {
		return err
	}
	if err := m.Net.RestoreState(d); err != nil {
		return err
	}
	for _, n := range m.Nodes {
		if err := n.RestoreState(d); err != nil {
			return err
		}
	}
	want := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if got := m.StateDigest(); got != want {
		return fmt.Errorf("machine: restored state digest %016x != captured %016x (codec gap or config drift)",
			got, want)
	}
	return nil
}
