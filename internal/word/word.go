// Package word implements the MDP's 36-bit tagged machine word.
//
// Every storage location in the Message-Driven Processor — registers,
// on-chip SRAM, off-chip DRAM, and message queues — holds a 36-bit word:
// 32 bits of data augmented with a 4-bit type tag. Tags drive the MDP's
// synchronization mechanisms (the cfut and fut presence tags raise a fault
// when read before a value is delivered) as well as its naming mechanisms
// (segment descriptors and global virtual names are distinguished types).
//
// A Word is packed into a uint64 for speed: bits 0-31 carry data, bits
// 32-35 carry the tag. The data field is interpreted as a signed 32-bit
// integer by the arithmetic helpers.
package word

import "fmt"

// Tag is the 4-bit data type attached to every word. Of the sixteen
// possible types the paper names cfut and fut explicitly; the remainder
// follow the MDP architecture reference.
type Tag uint8

const (
	// TagInt marks a 32-bit two's-complement integer.
	TagInt Tag = iota
	// TagBool marks a boolean (0 or 1 in the data field).
	TagBool
	// TagSym marks an opaque symbol (used for characters, selectors).
	TagSym
	// TagIP marks an instruction pointer: a code address within a node.
	TagIP
	// TagAddr marks a segment descriptor: base and length of a local
	// memory object (see package mem for the field layout).
	TagAddr
	// TagMsg marks a message header word: dispatch IP and message length.
	TagMsg
	// TagPtr marks a global virtual name (object ID) that must be
	// translated with XLATE before local use.
	TagPtr
	// TagNode marks a router address (encoded x,y,z node coordinates).
	TagNode
	// TagCfut marks a slot awaiting a value. Reading a cfut word raises a
	// fault; it provides inexpensive single-slot synchronization, much
	// like a full-empty bit.
	TagCfut
	// TagFut marks a future. Unlike cfut it may be copied without
	// faulting; only consuming operations (arithmetic, branching) fault.
	TagFut
	// TagUser0 through TagUser5 are uninterpreted by hardware and
	// available to language runtimes (CST uses them for object classes).
	TagUser0
	TagUser1
	TagUser2
	TagUser3
	TagUser4
	TagUser5

	// NumTags is the number of distinct tag values (4 bits).
	NumTags = 16
)

var tagNames = [NumTags]string{
	"int", "bool", "sym", "ip", "addr", "msg", "ptr", "node",
	"cfut", "fut", "user0", "user1", "user2", "user3", "user4", "user5",
}

// String returns the architecture-manual name of the tag.
func (t Tag) String() string {
	if int(t) < len(tagNames) {
		return tagNames[t]
	}
	return fmt.Sprintf("tag%d", uint8(t))
}

// Word is one 36-bit tagged machine word, packed as tag<<32 | data.
type Word uint64

const (
	dataMask = 0xFFFFFFFF
	tagShift = 32
	tagMask  = 0xF
)

// New packs a tag and 32 bits of data into a Word.
func New(t Tag, data int32) Word {
	return Word(uint64(t&tagMask)<<tagShift | uint64(uint32(data)))
}

// FromUint packs a tag and raw unsigned data into a Word.
func FromUint(t Tag, data uint32) Word {
	return Word(uint64(t&tagMask)<<tagShift | uint64(data))
}

// Int returns an integer-tagged word.
func Int(v int32) Word { return New(TagInt, v) }

// Bool returns a boolean-tagged word.
func Bool(v bool) Word {
	if v {
		return New(TagBool, 1)
	}
	return New(TagBool, 0)
}

// Sym returns a symbol-tagged word.
func Sym(v int32) Word { return New(TagSym, v) }

// IP returns an instruction-pointer word.
func IP(addr int32) Word { return New(TagIP, addr) }

// Cfut returns the canonical cfut (awaiting-value) word. The data field
// may identify the consumer to restart; zero means "no waiter".
func Cfut(waiter int32) Word { return New(TagCfut, waiter) }

// Fut returns a future word whose data field names the future object.
func Fut(id int32) Word { return New(TagFut, id) }

// Tag extracts the 4-bit type tag.
func (w Word) Tag() Tag { return Tag(w >> tagShift & tagMask) }

// Data extracts the 32-bit data field as a signed integer.
func (w Word) Data() int32 { return int32(uint32(w & dataMask)) }

// UData extracts the 32-bit data field as an unsigned integer.
func (w Word) UData() uint32 { return uint32(w & dataMask) }

// WithTag returns the word with its tag replaced (the WTAG instruction).
func (w Word) WithTag(t Tag) Word {
	return Word(uint64(t&tagMask)<<tagShift | uint64(w&dataMask))
}

// WithData returns the word with its data field replaced.
func (w Word) WithData(v int32) Word {
	return Word(w&^Word(dataMask) | Word(uint32(v)))
}

// IsPresent reports whether the word holds a real value, i.e. neither
// presence tag (cfut/fut) is set. Reading a non-present word with a
// consuming operation raises a synchronization fault in the MDP.
func (w Word) IsPresent() bool {
	t := w.Tag()
	return t != TagCfut && t != TagFut
}

// IsCfut reports whether the word carries the cfut presence tag.
func (w Word) IsCfut() bool { return w.Tag() == TagCfut }

// IsFut reports whether the word carries the fut presence tag.
func (w Word) IsFut() bool { return w.Tag() == TagFut }

// Truthy reports whether a word is considered true by conditional
// branches: any word whose data field is non-zero.
func (w Word) Truthy() bool { return w.UData() != 0 }

// String renders the word as tag:data for diagnostics.
func (w Word) String() string {
	return fmt.Sprintf("%s:%d", w.Tag(), w.Data())
}

// MsgHeader builds a message header word. The first word of every MDP
// message contains the address of the code to run at the destination and
// the length of the message: the low 24 bits of data carry the handler IP
// and the high 8 bits carry the message length in words.
func MsgHeader(handlerIP int32, length int) Word {
	return New(TagMsg, int32(length&0xFF)<<24|handlerIP&0xFFFFFF)
}

// HeaderIP extracts the handler instruction pointer from a header word.
func (w Word) HeaderIP() int32 { return w.Data() & 0xFFFFFF }

// HeaderLen extracts the message length in words from a header word.
func (w Word) HeaderLen() int { return int(uint32(w.Data()) >> 24) }

// Node packs x,y,z router coordinates into a node-address word (one byte
// per dimension, as the MDP's relative-addressing hardware does).
func Node(x, y, z int) Word {
	return New(TagNode, int32(x&0xFF)|int32(y&0xFF)<<8|int32(z&0xFF)<<16)
}

// NodeXYZ unpacks router coordinates from a node-address word.
func (w Word) NodeXYZ() (x, y, z int) {
	d := w.UData()
	return int(d & 0xFF), int(d >> 8 & 0xFF), int(d >> 16 & 0xFF)
}
