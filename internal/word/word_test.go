package word

import (
	"testing"
	"testing/quick"
)

func TestNewRoundTrip(t *testing.T) {
	cases := []struct {
		tag  Tag
		data int32
	}{
		{TagInt, 0},
		{TagInt, -1},
		{TagInt, 1 << 30},
		{TagInt, -(1 << 31)},
		{TagBool, 1},
		{TagCfut, 42},
		{TagFut, -7},
		{TagNode, 0x070605},
	}
	for _, c := range cases {
		w := New(c.tag, c.data)
		if w.Tag() != c.tag {
			t.Errorf("New(%v,%d).Tag() = %v", c.tag, c.data, w.Tag())
		}
		if w.Data() != c.data {
			t.Errorf("New(%v,%d).Data() = %d", c.tag, c.data, w.Data())
		}
	}
}

func TestPackUnpackProperty(t *testing.T) {
	f := func(tag uint8, data int32) bool {
		tg := Tag(tag % NumTags)
		w := New(tg, data)
		return w.Tag() == tg && w.Data() == data
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWithTagPreservesData(t *testing.T) {
	f := func(tag uint8, newTag uint8, data int32) bool {
		w := New(Tag(tag%NumTags), data)
		w2 := w.WithTag(Tag(newTag % NumTags))
		return w2.Data() == data && w2.Tag() == Tag(newTag%NumTags)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWithDataPreservesTag(t *testing.T) {
	f := func(tag uint8, data, newData int32) bool {
		w := New(Tag(tag%NumTags), data)
		w2 := w.WithData(newData)
		return w2.Tag() == Tag(tag%NumTags) && w2.Data() == newData
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPresence(t *testing.T) {
	if Cfut(0).IsPresent() {
		t.Error("cfut reported present")
	}
	if Fut(1).IsPresent() {
		t.Error("fut reported present")
	}
	if !Int(5).IsPresent() {
		t.Error("int reported not present")
	}
	if !Cfut(3).IsCfut() || Cfut(3).IsFut() {
		t.Error("cfut tag misclassified")
	}
	if !Fut(3).IsFut() || Fut(3).IsCfut() {
		t.Error("fut tag misclassified")
	}
}

func TestTruthy(t *testing.T) {
	if Int(0).Truthy() {
		t.Error("0 is truthy")
	}
	if !Int(-1).Truthy() {
		t.Error("-1 is falsy")
	}
	if !Bool(true).Truthy() || Bool(false).Truthy() {
		t.Error("bool truthiness wrong")
	}
}

func TestMsgHeader(t *testing.T) {
	h := MsgHeader(1234, 7)
	if h.Tag() != TagMsg {
		t.Errorf("header tag = %v", h.Tag())
	}
	if h.HeaderIP() != 1234 {
		t.Errorf("HeaderIP = %d", h.HeaderIP())
	}
	if h.HeaderLen() != 7 {
		t.Errorf("HeaderLen = %d", h.HeaderLen())
	}
}

func TestMsgHeaderProperty(t *testing.T) {
	f := func(ip int32, length uint8) bool {
		ip &= 0xFFFFFF
		h := MsgHeader(ip, int(length))
		return h.HeaderIP() == ip && h.HeaderLen() == int(length)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNodeWord(t *testing.T) {
	f := func(x, y, z uint8) bool {
		w := Node(int(x), int(y), int(z))
		gx, gy, gz := w.NodeXYZ()
		return gx == int(x) && gy == int(y) && gz == int(z) && w.Tag() == TagNode
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTagString(t *testing.T) {
	if TagCfut.String() != "cfut" || TagFut.String() != "fut" {
		t.Error("presence tag names wrong")
	}
	if TagInt.String() != "int" {
		t.Error("int tag name wrong")
	}
}
