package rt

import (
	"testing"

	"jmachine/internal/asm"
)

// TestAsmCheckLib runs the static MDP verifier over the runtime
// library on its own: every handler and subroutine BuildLib emits is
// checked without any application attached.
func TestAsmCheckLib(t *testing.T) {
	b := asm.NewBuilder()
	BuildLib(b)
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range asm.Check(p, CheckAllowances()...) {
		t.Errorf("rt lib: %s", f)
	}
}
