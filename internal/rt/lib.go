package rt

import (
	"jmachine/internal/asm"
	"jmachine/internal/isa"
	"jmachine/internal/machine"
	"jmachine/internal/stats"
	"jmachine/internal/word"
)

// Labels defined by the runtime library. Message handlers are entered by
// header words; subroutines expect their return address in R3 (spilled
// to scratch when they call others — the register-paucity cost the
// paper's critique describes).
const (
	// LRestore is the handler restarting a suspended thread (message:
	// [hdr, savedID]).
	LRestore = "rt.restore"
	// LHalt is a handler that halts the receiving node.
	LHalt = "rt.halt"
	// LAck sets the node's completion flag (1-word message; the ack of
	// the Figure 2 ping experiment).
	LAck = "rt.ack"
	// LPing replies to [hdr, replyNode] with a 1-word ack.
	LPing = "rt.ping"
	// LRRead1 serves a 1-word remote read: [hdr, addr, replyNode] →
	// 2-word reply to LRReply1.
	LRRead1 = "rt.rread1"
	// LRReply1 stores a 1-word reply at AddrReplyBuf and sets the flag.
	LRReply1 = "rt.rreply1"
	// LRRead6 serves a 6-word remote read → 7-word reply to LRReply6.
	LRRead6 = "rt.rread6"
	// LRReply6 stores a 6-word reply and sets the flag.
	LRReply6 = "rt.rreply6"
	// LWriteSync is the synchronizing-write subroutine: A0 = slot
	// address, R0 = value, link in R3. Fast path 4 cycles (Table 2).
	LWriteSync = "rt.writesync"
	// LId2Node converts a linear node index (R0) to a router address
	// word (R0); clobbers R1, R2, A2. This is the "NNR calculation" of
	// Figure 6.
	LId2Node = "rt.id2node"
	// LBarInit precomputes the barrier partner table (call once after
	// boot; clobbers R0-R3, A0-A2).
	LBarInit = "rt.barinit"
	// LBarrier runs one scan-style barrier (Table 3): link in R3,
	// clobbers R0-R2, A0, A1.
	LBarrier = "rt.barrier"
	// LBarWave is the priority-1 handler counting barrier arrivals.
	LBarWave = "rt.barwave"
	// LDack is the priority-1 handler retiring a reliable-delivery
	// acknowledgement: [hdr, seq].
	LDack = "rt.dack"
)

// AddrNWaves holds log₂(N), filled by LBarInit.
const AddrNWaves = 5

// AddrBarTable is the per-wave partner router-address table.
const AddrBarTable = 48

// ProgramInfo carries the runtime entry points Attach needs.
type ProgramInfo struct {
	RestoreEntry int32
	// DackEntry is the rt.dack acknowledgement handler, or -1 when the
	// program predates it (EnableReliable then refuses to attach).
	DackEntry int32
}

// Info extracts runtime entry points from an assembled program.
func Info(p *asm.Program) ProgramInfo {
	info := ProgramInfo{RestoreEntry: p.Entry(LRestore), DackEntry: -1}
	if p.HasLabel(LDack) {
		info.DackEntry = p.Entry(LDack)
	}
	return info
}

// BuildLib appends the runtime library to a program under construction.
// Applications call it once, after their own code, before Assemble.
func BuildLib(b *asm.Builder) {
	libRestore(b)
	libSimpleHandlers(b)
	libRemoteRead(b)
	libWriteSync(b)
	libId2Node(b)
	libBarrier(b)
}

func libRestore(b *asm.Builder) {
	b.Label(LRestore).
		Trap(SvcRestore).
		Suspend() // unreachable: the service resumes or suspends

	b.Label(LHalt).
		Halt()

	// rt.dack: [hdr, seq] at priority 1 — hand the acknowledged
	// sequence number to the reliable-delivery service.
	b.Label(LDack).
		Trap(SvcDack).
		Suspend()
}

func libSimpleHandlers(b *asm.Builder) {
	// rt.ack: [hdr] — set the completion flag. The flag value is the
	// arrival cycle (CYC is this simulator's statistics counter,
	// standing in for the hand-placed timers the paper's authors used),
	// so latency measurements are exact rather than quantized by the
	// waiter's spin loop.
	b.Label(LAck).
		MoveI(isa.A0, AddrFlag).
		Move(isa.R0, asm.R(isa.CYC)).
		St(isa.R0, asm.Mem(isa.A0, 0)).
		Suspend()

	// rt.ping: [hdr, replyNode] — send a 1-word ack back.
	b.Label(LPing).
		Send(asm.Mem(isa.A3, 1)).
		MoveHdr(isa.R1, LAck, 1).
		SendE(asm.R(isa.R1)).
		Suspend()
}

func libRemoteRead(b *asm.Builder) {
	// rt.rread1: [hdr, addr, replyNode] — read one word at addr, reply.
	b.Label(LRRead1).
		Move(isa.A0, asm.Mem(isa.A3, 1)).
		Send(asm.Mem(isa.A3, 2)).
		MoveHdr(isa.R1, LRReply1, 2).
		Send(asm.R(isa.R1)).
		SendE(asm.Mem(isa.A0, 0)). // 2 cycles from Imem, 8 from Emem
		Suspend()

	b.Label(LRReply1).
		Move(isa.R0, asm.Mem(isa.A3, 1)).
		MoveI(isa.A0, AddrReplyBuf).
		St(isa.R0, asm.Mem(isa.A0, 0)).
		MoveI(isa.A1, AddrFlag).
		Move(isa.R1, asm.R(isa.CYC)).
		St(isa.R1, asm.Mem(isa.A1, 0)).
		Suspend()

	// rt.rread6: as rread1 but six data words.
	b.Label(LRRead6).
		Move(isa.A0, asm.Mem(isa.A3, 1)).
		Send(asm.Mem(isa.A3, 2)).
		MoveHdr(isa.R1, LRReply6, 7).
		Send(asm.R(isa.R1))
	for i := int32(0); i < 5; i++ {
		b.Send(asm.Mem(isa.A0, i))
	}
	b.SendE(asm.Mem(isa.A0, 5)).
		Suspend()

	b.Label(LRReply6).
		MoveI(isa.A0, AddrReplyBuf)
	for i := int32(0); i < 6; i++ {
		b.Move(isa.R0, asm.Mem(isa.A3, 1+i)).
			St(isa.R0, asm.Mem(isa.A0, i))
	}
	b.MoveI(isa.A1, AddrFlag).
		Move(isa.R1, asm.R(isa.CYC)).
		St(isa.R1, asm.Mem(isa.A1, 0)).
		Suspend()
}

func libWriteSync(b *asm.Builder) {
	// rt.writesync: A0 = slot, R0 = value, link R3.
	// Fast path (slot already written once / plain): test-tag, store —
	// 4 cycles, versus 6 for the software-flag protocol of Table 2.
	b.Label(LWriteSync).
		Iscf(isa.R1, asm.Mem(isa.A0, 0)).
		Bt(isa.R1, "rt.writesync.slow").
		St(isa.R0, asm.Mem(isa.A0, 0)).
		Jmp(asm.R(isa.R3)).
		Label("rt.writesync.slow").
		Trap(SvcWriteSync).
		Jmp(asm.R(isa.R3))
}

func libId2Node(b *asm.Builder) {
	// rt.id2node: R0 = linear id → R0 = router address word.
	// Divides by the mesh dimensions — the expensive conversion the
	// paper attributes to "NNR calculations".
	b.Label(LId2Node).
		MoveI(isa.RGN, int32(stats.CatNNR)).
		MoveI(isa.A2, 0).
		Move(isa.R1, asm.R(isa.R0)).
		Mod(isa.R1, asm.Mem(isa.A2, AddrDimX)). // x
		Div(isa.R0, asm.Mem(isa.A2, AddrDimX)).
		Move(isa.R2, asm.R(isa.R0)).
		Mod(isa.R2, asm.Mem(isa.A2, AddrDimY)). // y
		Div(isa.R0, asm.Mem(isa.A2, AddrDimY)). // z
		Lsh(isa.R2, asm.Imm(8)).
		Or(isa.R1, asm.R(isa.R2)).
		Lsh(isa.R0, asm.Imm(16)).
		Or(isa.R1, asm.R(isa.R0)).
		Wtag(isa.R1, asm.Imm(int32(word.TagNode))).
		Move(isa.R0, asm.R(isa.R1)).
		MoveI(isa.RGN, 0).
		Jmp(asm.R(isa.R3))
}

func libBarrier(b *asm.Builder) {
	// rt.barinit: fill AddrBarTable with partner router addresses and
	// AddrNWaves with log₂(N). Scratch: [+1]=link, [+2]=bit, [+3]=wave.
	b.Label(LBarInit).
		MoveI(isa.A0, AddrScratch).
		St(isa.R3, asm.Mem(isa.A0, 1)).
		MoveI(isa.R1, 1).
		St(isa.R1, asm.Mem(isa.A0, 2)).
		MoveI(isa.R1, 0).
		St(isa.R1, asm.Mem(isa.A0, 3)).
		Label("rt.barinit.loop").
		MoveI(isa.A0, AddrScratch).
		Move(isa.R1, asm.Mem(isa.A0, 2)). // bit
		MoveI(isa.A1, 0).
		Move(isa.R0, asm.Mem(isa.A1, AddrNumNodes)).
		Move(isa.R2, asm.R(isa.R1)).
		Ge(isa.R2, asm.R(isa.R0)). // bit >= N?
		Bt(isa.R2, "rt.barinit.done").
		Move(isa.R0, asm.Mem(isa.A1, AddrNodeID)).
		Xor(isa.R0, asm.R(isa.R1)). // partner id
		Bsr(isa.R3, LId2Node).
		MoveI(isa.A0, AddrScratch).
		Move(isa.R2, asm.Mem(isa.A0, 3)). // wave
		MoveI(isa.A1, AddrBarTable).
		St(isa.R0, asm.MemR(isa.A1, isa.R2)).
		Move(isa.R1, asm.Mem(isa.A0, 2)).
		Lsh(isa.R1, asm.Imm(1)).
		St(isa.R1, asm.Mem(isa.A0, 2)).
		Add(isa.R2, asm.Imm(1)).
		St(isa.R2, asm.Mem(isa.A0, 3)).
		Br("rt.barinit.loop").
		Label("rt.barinit.done").
		Move(isa.R2, asm.Mem(isa.A0, 3)).
		MoveI(isa.A1, 0).
		St(isa.R2, asm.Mem(isa.A1, AddrNWaves)).
		Move(isa.R3, asm.Mem(isa.A0, 1)).
		Jmp(asm.R(isa.R3))

	// rt.barrier: one barrier episode. For an N-node machine,
	// (N/2)·log₂N messages are sent machine-wide, N per wave, in a
	// butterfly pattern; each wave's arrival invokes the priority-1
	// handler below, matched by wave index.
	b.Label(LBarrier).
		MoveI(isa.A0, AddrScratch).
		St(isa.R3, asm.Mem(isa.A0, 0)).
		MoveI(isa.R2, 0). // wave index, live across the loop
		Label("rt.barrier.loop").
		MoveI(isa.A1, 0).
		Move(isa.R1, asm.Mem(isa.A1, AddrNWaves)).
		Move(isa.R0, asm.R(isa.R2)).
		Ge(isa.R0, asm.R(isa.R1)).
		Bt(isa.R0, "rt.barrier.done").
		MoveI(isa.A1, AddrBarTable).
		Send1(asm.MemR(isa.A1, isa.R2)). // partner router address
		MoveHdr(isa.R1, LBarWave, 2).
		Send1(asm.R(isa.R1)).
		SendE1(asm.R(isa.R2)). // wave index
		MoveI(isa.A1, AddrBarrier).
		Label("rt.barrier.spin").
		Move(isa.R1, asm.MemR(isa.A1, isa.R2)).
		Bf(isa.R1, "rt.barrier.spin").
		Sub(isa.R1, asm.Imm(1)).
		St(isa.R1, asm.MemR(isa.A1, isa.R2)).
		Add(isa.R2, asm.Imm(1)).
		Br("rt.barrier.loop").
		Label("rt.barrier.done").
		MoveI(isa.A0, AddrScratch).
		Move(isa.R3, asm.Mem(isa.A0, 0)).
		Jmp(asm.R(isa.R3))

	// rt.barwave: [hdr, wave] at priority 1 — count the arrival. The
	// fast hardware dispatch matches each wave to its counter.
	b.Label(LBarWave).
		Move(isa.R0, asm.Mem(isa.A3, 1)).
		MoveI(isa.A0, AddrBarrier).
		Move(isa.R1, asm.MemR(isa.A0, isa.R0)).
		Add(isa.R1, asm.Imm(1)).
		St(isa.R1, asm.MemR(isa.A0, isa.R0)).
		Suspend()
}

// StartAll boots every node's background thread at the program label.
func StartAll(m *machine.Machine, p *asm.Program, label string) {
	entry := p.Entry(label)
	for _, n := range m.Nodes {
		n.StartBackground(entry)
	}
}

// StartNode boots one node's background thread at the program label.
func StartNode(m *machine.Machine, p *asm.Program, id int, label string) {
	m.Nodes[id].StartBackground(p.Entry(label))
}
