// Package rt is the J-Machine's system software ("JOS" in spirit): boot
// conventions, fault service (presence-tag suspension and restart, xlate
// misses), synchronizing writes, the barrier-synchronization library the
// paper measures in Table 3, and the remote-read/ping handlers behind
// Figure 2.
//
// The runtime has two halves. The assembly half (lib.go) is ordinary MDP
// code appended to each application program; its costs are measured in
// simulated cycles like any other code. The Go half stands in for the
// privileged trap handlers: it is entered only through processor faults
// and TRAP instructions, and charges configurable cycle costs for the
// work it performs — the paper itself reports thread save/restore as a
// policy range (20–50 cycles) rather than a fixed number.
package rt

// Node memory-map conventions. The runtime owns internal-memory words
// [0, AppBase); applications allocate from AppBase up.
const (
	// AddrNodeID holds this node's linear index (boot-time constant).
	AddrNodeID = 0
	// AddrNumNodes holds the machine's node count.
	AddrNumNodes = 1
	// AddrDimX/Y/Z hold the mesh dimensions, for index↔router-address
	// conversions ("NNR calculations").
	AddrDimX = 2
	AddrDimY = 3
	AddrDimZ = 4

	// AddrFlag is the generic reply/completion spin flag used by the
	// ping and remote-read clients.
	AddrFlag = 8
	// AddrReplyBuf is a 7-word buffer receiving remote-read replies.
	AddrReplyBuf = 9

	// AddrBarrier is the base of the barrier wave counters, one word
	// per butterfly stage (log₂N ≤ 16).
	AddrBarrier = 16

	// AddrScratch is runtime scratch space (subroutine linkage spills —
	// the MDP's paucity of registers forces memory saves, exactly the
	// cost the paper's critique describes).
	AddrScratch = 32

	// AppBase is the first internal-memory word owned by applications.
	AppBase = 64
)

// Trap service numbers.
const (
	// SvcWriteSync completes a synchronizing write that found a cfut
	// tag: A0 holds the slot address, R0 the value. Restarts the waiter
	// recorded in the slot, if any.
	SvcWriteSync = 1
	// SvcRestore restores a suspended thread: invoked by the rt.restore
	// message handler with the saved-thread id at message word 1.
	SvcRestore = 2
	// SvcDack retires a reliable-delivery acknowledgement: invoked by
	// the rt.dack handler with the acknowledged sequence number at
	// message word 1. Registered only when EnableReliable is active.
	SvcDack = 3
	// SvcUserBase is the first service number available to language
	// runtimes (the CST runtime registers its services here).
	SvcUserBase = 16
)

// Policy sets the software cost constants. The defaults sit inside the
// ranges Table 2 reports for thread save/restore.
type Policy struct {
	// SaveCycles is charged when a faulting thread is suspended
	// (Table 2 "Save/Restore": 30–50 for suspension policies).
	SaveCycles int32
	// RestoreCycles is charged when a suspended thread is restarted
	// (Table 2: 20–50).
	RestoreCycles int32
	// WriteRestartCycles is charged by SvcWriteSync when a write finds
	// a waiter to restart.
	WriteRestartCycles int32
	// XlateMissCycles is charged to re-enter an evicted translation
	// from the memory-resident table.
	XlateMissCycles int32
}

// DefaultPolicy returns mid-range costs.
func DefaultPolicy() Policy {
	return Policy{
		SaveCycles:         40,
		RestoreCycles:      30,
		WriteRestartCycles: 25,
		XlateMissCycles:    30,
	}
}
