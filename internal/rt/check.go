package rt

import "jmachine/internal/asm"

// CheckAllowances returns the asm.Check suppressions needed to verify
// any program that links the runtime library.
//
// There are none left. Earlier revisions suppressed ASM001 for the
// library's register-contract subroutines (rt.writesync, rt.barinit,
// rt.barrier): when an application never called one locally, the
// checker treated its orphan label as a handler entry and reported the
// contract registers as read-before-def. The effect certifier now
// classifies orphan labels that return via a register JMP and never
// SUSPEND as subroutine contracts and seeds their dataflow with the
// caller-provides-everything assumption, so those findings no longer
// occur — and asm.Check's ASM012 flags any allowance that suppresses
// nothing, which is why the retired entries must not linger here.
func CheckAllowances() []asm.Allowance {
	return nil
}
