package rt

import "jmachine/internal/asm"

// CheckAllowances returns the asm.Check suppressions needed to verify
// any program that links the runtime library. The library's subroutines
// are entered with a register-passing contract — arguments and the BSR
// link register are supplied by the caller — so when an application
// never calls one of them locally the static checker sees the label as
// an entry where only the dispatch registers are defined and reports
// the contract registers as read-before-def (ASM001).
func CheckAllowances() []asm.Allowance {
	return []asm.Allowance{
		{Code: "ASM001", Label: LWriteSync,
			Rationale: "subroutine contract: A0 = sync slot, R0 = value, link in R3 (libWriteSync)"},
		{Code: "ASM001", Label: LWriteSync + ".slow",
			Rationale: "slow-path tail of rt.writesync: same contract, link in R3"},
		{Code: "ASM001", Label: LBarInit,
			Rationale: "subroutine contract: link in R3, saved to scratch before use"},
		{Code: "ASM001", Label: LBarrier,
			Rationale: "subroutine contract: link in R3, saved to scratch before use"},
	}
}
