package rt

import (
	"fmt"

	"jmachine/internal/machine"
	"jmachine/internal/mdp"
	"jmachine/internal/word"
)

// Service is a registered trap service: it runs with full access to the
// node and the runtime's per-node state and returns the cycles consumed
// plus how the processor resumes.
type Service func(n *mdp.Node, ns *NodeState, f mdp.Fault) (int32, mdp.FaultAction)

// savedThread is a suspended context awaiting a value.
type savedThread struct {
	ctx   mdp.Context
	level int
}

// NodeState is the runtime's per-node private memory.
type NodeState struct {
	saved      map[int32]savedThread
	nextWaiter int32
	// names is the memory-resident name table backing the hardware
	// translation cache; xlate misses re-enter from here.
	names map[word.Word]word.Word
	// User hangs language-runtime state (the CST runtime's object
	// tables) off the node.
	User any
}

// Runtime is one machine's system software instance.
type Runtime struct {
	M        *machine.Machine
	Policy   Policy
	nodes    []*NodeState
	services map[int32]Service
	restore  int32 // code address of the rt.restore handler
	dack     int32 // code address of the rt.dack handler (-1 if absent)
}

// Attach installs the runtime on a machine running a program that
// includes the rt library (BuildLib). It preloads the boot constants
// into every node's memory and installs the fault handler.
func Attach(m *machine.Machine, prog ProgramInfo, pol Policy) *Runtime {
	r := &Runtime{
		M:        m,
		Policy:   pol,
		nodes:    make([]*NodeState, m.NumNodes()),
		services: make(map[int32]Service),
		restore:  prog.RestoreEntry,
		dack:     prog.DackEntry,
	}
	for i := range r.nodes {
		r.nodes[i] = &NodeState{
			saved: make(map[int32]savedThread),
			names: make(map[word.Word]word.Word),
		}
	}
	x, y, z := m.Net.Dims()
	for _, n := range m.Nodes {
		must(n.Mem.Write(AddrNodeID, word.Int(int32(n.ID))))
		must(n.Mem.Write(AddrNumNodes, word.Int(int32(m.NumNodes()))))
		must(n.Mem.Write(AddrDimX, word.Int(int32(x))))
		must(n.Mem.Write(AddrDimY, word.Int(int32(y))))
		must(n.Mem.Write(AddrDimZ, word.Int(int32(z))))
	}
	m.SetFaultFn(r.fault)
	return r
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// Node returns the runtime state of node id.
func (r *Runtime) Node(id int) *NodeState { return r.nodes[id] }

// RegisterService adds a trap service (numbers ≥ SvcUserBase are
// reserved for language runtimes).
func (r *Runtime) RegisterService(num int32, s Service) {
	if _, dup := r.services[num]; dup {
		panic(fmt.Sprintf("rt: service %d registered twice", num))
	}
	r.services[num] = s
}

// DefineName publishes a global name on a node: it enters the
// translation into both the memory-resident table and the hardware
// cache (host-side operation used when constructing object worlds).
func (r *Runtime) DefineName(node int, key, val word.Word) {
	r.nodes[node].names[key] = val
	r.M.Nodes[node].Xl.Enter(key, val)
}

// NameCount returns how many names node id has published.
func (r *Runtime) NameCount(id int) int { return len(r.nodes[id].names) }

// fault is the machine-wide trap entry.
func (r *Runtime) fault(n *mdp.Node, f mdp.Fault) (int32, mdp.FaultAction) {
	ns := r.nodes[n.ID]
	switch f.Kind {
	case mdp.FaultCfut:
		return r.suspendOnCfut(n, ns, f)
	case mdp.FaultXlateMiss:
		if val, ok := ns.names[f.Val]; ok {
			n.Xl.Enter(f.Val, val)
			return r.Policy.XlateMissCycles, mdp.ActRetry
		}
		return 0, mdp.ActHalt
	case mdp.FaultTrap:
		svc := f.Val.Data()
		switch svc {
		case SvcWriteSync:
			return r.writeSync(n, ns, f)
		case SvcRestore:
			return r.restoreThread(n, ns, f)
		default:
			if s, ok := r.services[svc]; ok {
				return s(n, ns, f)
			}
			return 0, mdp.ActHalt
		}
	default:
		return 0, mdp.ActHalt
	}
}

// suspendOnCfut implements the reader side of presence-tag
// synchronization: the thread that read a not-present slot is saved, a
// waiter id is recorded in the slot, and the thread ends. The value's
// eventual writer restarts it.
func (r *Runtime) suspendOnCfut(n *mdp.Node, ns *NodeState, f mdp.Fault) (int32, mdp.FaultAction) {
	if f.Addr < 0 {
		// A cfut in a register has no slot to hang a waiter on; this is
		// a programming error in our applications.
		return 0, mdp.ActHalt
	}
	old, err := n.Mem.Read(f.Addr)
	if err != nil || !old.IsCfut() {
		return 0, mdp.ActHalt
	}
	if old.Data() != 0 {
		// Single-waiter slots: a second reader would need a waiter
		// list, which this runtime (like Tuned-J) does not provide.
		return 0, mdp.ActHalt
	}
	ns.nextWaiter++
	id := ns.nextWaiter
	ns.saved[id] = savedThread{ctx: *n.Ctx(f.Level), level: f.Level}
	must(n.Mem.Write(f.Addr, word.Cfut(id)))
	return r.Policy.SaveCycles, mdp.ActSuspend
}

// writeSync services the slow path of a synchronizing write: A0 holds
// the slot address, R0 the value. If the slot records a waiter the saved
// thread is restarted via a local restore message.
func (r *Runtime) writeSync(n *mdp.Node, ns *NodeState, f mdp.Fault) (int32, mdp.FaultAction) {
	ctx := n.Ctx(f.Level)
	addrW := ctx.Regs[4] // A0
	val := ctx.Regs[0]   // R0
	addr := addrW.Data()
	old, err := n.Mem.Read(addr)
	if err != nil {
		return 0, mdp.ActHalt
	}
	if old.IsCfut() && old.Data() != 0 {
		// Restart the waiter with a local message; if the queue lacks
		// space, stall the writer and retry (injection back-pressure).
		hdr := word.MsgHeader(r.restore, 2)
		if !pushLocal(n, hdr, word.Int(old.Data())) {
			return 1, mdp.ActRetry
		}
	}
	must(n.Mem.Write(addr, val))
	return r.Policy.WriteRestartCycles, mdp.ActAdvance
}

// pushLocal delivers a two-word message directly into the node's own
// priority-0 queue (privileged-software path; charged by the caller).
func pushLocal(n *mdp.Node, hdr, arg word.Word) bool {
	q := n.Queues[0]
	if q.Free() < 2 {
		return false
	}
	if !q.Push(hdr) {
		return false
	}
	q.Push(arg)
	return true
}

// restoreThread services the rt.restore handler's trap: message word 1
// names a saved thread; its context is reinstalled at its original
// level.
func (r *Runtime) restoreThread(n *mdp.Node, ns *NodeState, f mdp.Fault) (int32, mdp.FaultAction) {
	q := n.Queues[0]
	id := q.WordAt(1).Data()
	st, ok := ns.saved[id]
	if !ok {
		return 0, mdp.ActHalt
	}
	delete(ns.saved, id)
	if st.level == f.Level {
		// Replace the restore handler's own context: consume its
		// message first, then resume the saved thread in place.
		n.PopCurrentMessage(f.Level)
		*n.Ctx(st.level) = st.ctx
		n.Ctx(st.level).Running = true
		n.Stats.SetCurrent(st.ctx.HandlerIP)
		return r.Policy.RestoreCycles, mdp.ActResume
	}
	// Different level (a background or priority-1 thread): reinstall it
	// there and end the restore handler normally.
	*n.Ctx(st.level) = st.ctx
	n.Ctx(st.level).Running = true
	return r.Policy.RestoreCycles, mdp.ActSuspend
}

// SavedThreads returns how many threads node id has suspended awaiting
// values (for tests).
func (r *Runtime) SavedThreads(id int) int { return len(r.nodes[id].saved) }
