package rt_test

import (
	"testing"

	"jmachine/internal/asm"
	"jmachine/internal/isa"
	"jmachine/internal/machine"
	"jmachine/internal/rt"
	"jmachine/internal/word"
)

// buildWith assembles app code plus the runtime library.
func buildWith(t *testing.T, build func(b *asm.Builder)) *asm.Program {
	t.Helper()
	b := asm.NewBuilder()
	build(b)
	rt.BuildLib(b)
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// pingClient emits a driver that pings the node word at AppBase and halts
// once the ack flag rises.
func pingClient(b *asm.Builder) {
	b.Label("main").
		MoveI(isa.A0, rt.AppBase).
		Move(isa.R2, asm.R(isa.CYC)). // departure timestamp
		St(isa.R2, asm.Mem(isa.A0, 3)).
		Send(asm.Mem(isa.A0, 0)).
		MoveHdr(isa.R1, rt.LPing, 2).
		Send(asm.R(isa.R1)).
		SendE(asm.R(isa.NNR)).
		// Suspend rather than spin so the ack dispatches the moment it
		// arrives (spinning quantizes dispatch to the loop period).
		Suspend()
}

// rtt extracts the exact round-trip time: arrival timestamp written by
// the ack/reply handler minus the client's departure timestamp.
func rtt(m *machine.Machine) int64 {
	flag, _ := m.Nodes[0].Mem.Read(rt.AddrFlag)
	start, _ := m.Nodes[0].Mem.Read(rt.AppBase + 3)
	return int64(flag.Data() - start.Data())
}

// runFlagged runs until node 0's completion flag rises.
func runFlagged(t *testing.T, m *machine.Machine) {
	t.Helper()
	err := m.RunWhile(func(m *machine.Machine) bool {
		w, _ := m.Nodes[0].Mem.Read(rt.AddrFlag)
		return !w.Truthy()
	}, 100000)
	if err != nil {
		t.Fatal(err)
	}
}

func runPing(t *testing.T, dims [3]int, target int) int64 {
	t.Helper()
	p := buildWith(t, pingClient)
	m := machine.MustNew(machine.Grid(dims[0], dims[1], dims[2]), p)
	rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
	m.Nodes[0].Mem.Write(rt.AppBase, m.Net.NodeWord(target))
	rt.StartNode(m, p, 0, "main")
	runFlagged(t, m)
	return rtt(m)
}

func TestSelfPingBaseLatency(t *testing.T) {
	// The paper's base round-trip latency — a node pinging itself — is
	// 43 cycles (24 network + 19 thread execution). The simulator must
	// land in that neighbourhood.
	got := runPing(t, [3]int{1, 1, 1}, 0)
	if got < 33 || got > 55 {
		t.Errorf("self-ping RTT = %d cycles, want ≈43", got)
	}
	t.Logf("self-ping RTT = %d cycles (paper: 43)", got)
}

func TestPingSlopeTwoCyclesPerHop(t *testing.T) {
	// Round-trip latency grows by 2 cycles per hop of distance.
	prev := runPing(t, [3]int{8, 1, 1}, 0)
	for d := 1; d < 8; d++ {
		got := runPing(t, [3]int{8, 1, 1}, d)
		if diff := got - prev; diff != 2 {
			t.Errorf("hop %d: RTT %d -> %d (slope %d, want 2)", d, prev, got, diff)
		}
		prev = got
	}
}

func TestCornerToCornerUnder98Cycles(t *testing.T) {
	// "...read a word from the memory of its nearest neighbour in 60
	// cycles and from the opposite corner node in 98 cycles" — on an
	// 8×8×8 machine the corner-to-corner ping (21 hops) plus read costs
	// must stay in that regime. Use a 4×4×4 here (9 hops) to keep the
	// test fast and check the distance formula instead.
	near := runPing(t, [3]int{4, 4, 4}, 1) // 1 hop
	far := runPing(t, [3]int{4, 4, 4}, 63) // 9 hops
	if far-near != 2*8 {
		t.Errorf("corner ping = %d, near = %d, slope error", far, near)
	}
}

// remote read client: reads n words from target's memory at srcAddr.
func readClient(handler string, replyLen int) func(b *asm.Builder) {
	return func(b *asm.Builder) {
		b.Label("main").
			MoveI(isa.A0, rt.AppBase).
			Move(isa.R2, asm.R(isa.CYC)). // departure timestamp
			St(isa.R2, asm.Mem(isa.A0, 3)).
			Send(asm.Mem(isa.A0, 0)). // dest
			MoveHdr(isa.R1, handler, 3).
			Send(asm.R(isa.R1)).
			Send(asm.Mem(isa.A0, 1)). // remote address
			SendE(asm.R(isa.NNR)).    // reply node
			Suspend()
	}
}

func runRead(t *testing.T, handler string, n int, remoteAddr int32) (int64, []word.Word) {
	t.Helper()
	p := buildWith(t, readClient(handler, n))
	m := machine.MustNew(machine.Grid(2, 1, 1), p)
	rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
	m.Nodes[0].Mem.Write(rt.AppBase, m.Net.NodeWord(1))
	m.Nodes[0].Mem.Write(rt.AppBase+1, word.Int(remoteAddr))
	for i := 0; i < n; i++ {
		m.Nodes[1].Mem.Write(remoteAddr+int32(i), word.Int(int32(1000+i)))
	}
	rt.StartNode(m, p, 0, "main")
	runFlagged(t, m)
	out := make([]word.Word, n)
	for i := range out {
		out[i], _ = m.Nodes[0].Mem.Read(rt.AddrReplyBuf + int32(i))
	}
	return rtt(m), out
}

func TestRemoteRead1(t *testing.T) {
	imemCycles, data := runRead(t, rt.LRRead1, 1, 200) // internal memory
	if data[0].Data() != 1000 {
		t.Fatalf("read returned %v", data[0])
	}
	ememCycles, data := runRead(t, rt.LRRead1, 1, 6000) // external memory
	if data[0].Data() != 1000 {
		t.Fatalf("read returned %v", data[0])
	}
	// External memory access adds ~6 cycles for the single word.
	diff := ememCycles - imemCycles
	if diff < 4 || diff > 8 {
		t.Errorf("Emem - Imem = %d cycles for 1 word, want ≈6", diff)
	}
	t.Logf("Read1 Imem RTT = %d, Emem RTT = %d", imemCycles, ememCycles)
}

func TestRemoteRead6(t *testing.T) {
	imemCycles, data := runRead(t, rt.LRRead6, 6, 200)
	for i, w := range data {
		if w.Data() != int32(1000+i) {
			t.Fatalf("word %d = %v", i, w)
		}
	}
	ememCycles, _ := runRead(t, rt.LRRead6, 6, 6000)
	// 6 words at ~6 extra cycles per external word.
	diff := ememCycles - imemCycles
	if diff < 30 || diff > 44 {
		t.Errorf("Emem - Imem = %d cycles for 6 words, want ≈36", diff)
	}
	t.Logf("Read6 Imem RTT = %d, Emem RTT = %d", imemCycles, ememCycles)
}

// barrierProgram: every node initializes the partner table, runs k
// barriers, and node 0 halts. Other nodes suspend their background
// thread after the barriers.
func barrierProgram(k int) func(b *asm.Builder) {
	return func(b *asm.Builder) {
		bb := b.Label("main").
			Bsr(isa.R3, rt.LBarInit).
			MoveI(isa.A2, rt.AppBase).
			MoveI(isa.R0, int32(k)).
			St(isa.R0, asm.Mem(isa.A2, 1))
		bb.Label("main.loop").
			Bsr(isa.R3, rt.LBarrier).
			MoveI(isa.A2, rt.AppBase).
			Move(isa.R0, asm.Mem(isa.A2, 1)).
			Sub(isa.R0, asm.Imm(1)).
			St(isa.R0, asm.Mem(isa.A2, 1)).
			Bt(isa.R0, "main.loop").
			// done: node 0 halts, others idle.
			MoveI(isa.A2, 0).
			Move(isa.R1, asm.Mem(isa.A2, rt.AddrNodeID)).
			Bt(isa.R1, "main.rest").
			Halt().
			Label("main.rest").
			Suspend()
	}
}

func runBarriers(t *testing.T, nodes, k int) *machine.Machine {
	t.Helper()
	p := buildWith(t, barrierProgram(k))
	cfg := machine.GridForNodes(nodes)
	m := machine.MustNew(cfg, p)
	rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
	rt.StartAll(m, p, "main")
	if err := m.RunUntilHalt(0, 2_000_000); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBarrierCompletes(t *testing.T) {
	for _, nodes := range []int{2, 4, 8, 16} {
		m := runBarriers(t, nodes, 3)
		if err := m.RunQuiescent(100000); err != nil {
			t.Fatalf("%d nodes: %v", nodes, err)
		}
	}
}

func TestBarrierMessageCount(t *testing.T) {
	// An N-node barrier sends N·log₂(N) messages (N per wave).
	const nodes, k = 8, 2
	m := runBarriers(t, nodes, k)
	var sent uint64
	for _, ns := range m.Stats.Nodes {
		sent += ns.MsgsSent[1]
	}
	want := uint64(nodes * 3 * k) // log2(8)=3 waves, k barriers
	if sent != want {
		t.Errorf("barrier P1 messages = %d, want %d", sent, want)
	}
}

func TestBarrierScaling(t *testing.T) {
	// Barrier time grows roughly logarithmically: going from 2 to 16
	// nodes (1 -> 4 waves) must far less than quadruple the time.
	t2 := runBarriers(t, 2, 4).Cycle()
	t16 := runBarriers(t, 16, 4).Cycle()
	if t16 <= t2 {
		t.Errorf("16-node barrier (%d cycles) not slower than 2-node (%d)", t16, t2)
	}
	if float64(t16) > 6*float64(t2) {
		t.Errorf("barrier scaling worse than logarithmic: %d -> %d", t2, t16)
	}
	t.Logf("4 barriers: 2 nodes = %d cycles, 16 nodes = %d cycles", t2, t16)
}

func TestWriteSyncFastPath(t *testing.T) {
	// Writing a slot that holds a plain value takes the 4-cycle path.
	p := buildWith(t, func(b *asm.Builder) {
		b.Label("main").
			MoveI(isa.A0, rt.AppBase).
			MoveI(isa.R0, 99).
			Bsr(isa.R3, rt.LWriteSync).
			Halt()
	})
	m := machine.MustNew(machine.Grid(1, 1, 1), p)
	rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
	m.Nodes[0].Mem.Write(rt.AppBase, word.Int(0))
	rt.StartNode(m, p, 0, "main")
	if err := m.RunUntilHalt(0, 1000); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Nodes[0].Mem.Read(rt.AppBase)
	if got.Data() != 99 {
		t.Fatalf("writesync stored %v", got)
	}
	// MoveI+MoveI (2) + BSR (3) + fast path ISCF/BT/ST (4) + JMP (3) + halt 1.
	if m.Cycle() != 13 {
		t.Errorf("fast-path write total = %d cycles, want 13", m.Cycle())
	}
}

func TestSuspendAndRestart(t *testing.T) {
	// A consumer reads a cfut slot and suspends; a later producer uses
	// the synchronizing write to deliver the value and restart it.
	p := buildWith(t, func(b *asm.Builder) {
		// consumer handler: read the slot, double it, store result.
		b.Label("consumer").
			MoveI(isa.A0, rt.AppBase).
			Move(isa.R0, asm.Mem(isa.A0, 0)). // faults: slot is cfut
			Add(isa.R0, asm.R(isa.R0)).
			MoveI(isa.A1, rt.AppBase+1).
			St(isa.R0, asm.Mem(isa.A1, 0)).
			Suspend()
		// producer handler: writesync the value 21 into the slot.
		b.Label("producer").
			MoveI(isa.A0, rt.AppBase).
			MoveI(isa.R0, 21).
			Bsr(isa.R3, rt.LWriteSync).
			Suspend()
	})
	m := machine.MustNew(machine.Grid(1, 1, 1), p)
	r := rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
	n := m.Nodes[0]
	n.Mem.FillCfut(rt.AppBase, 1)
	// Dispatch the consumer first.
	n.Queues[0].Push(word.MsgHeader(p.Entry("consumer"), 1))
	m.StepN(40)
	if r.SavedThreads(0) != 1 {
		t.Fatalf("consumer not suspended: %d saved", r.SavedThreads(0))
	}
	// Now the producer arrives.
	n.Queues[0].Push(word.MsgHeader(p.Entry("producer"), 1))
	m.StepN(300)
	got, _ := n.Mem.Read(rt.AppBase + 1)
	if got.Data() != 42 {
		t.Fatalf("restarted consumer computed %v, want 42", got)
	}
	if r.SavedThreads(0) != 0 {
		t.Error("saved thread not cleaned up")
	}
	if m.Stats.Nodes[0].CfutFaults != 1 {
		t.Errorf("cfut faults = %d", m.Stats.Nodes[0].CfutFaults)
	}
}

func TestXlateMissRefill(t *testing.T) {
	// An evicted translation is re-entered from the memory-resident
	// table by the miss handler, and the XLATE retries successfully.
	p := buildWith(t, func(b *asm.Builder) {
		b.Label("main").
			MoveI(isa.R0, 777).
			Wtag(isa.R0, asm.Imm(int32(word.TagPtr))).
			Xlate(isa.A0, asm.R(isa.R0)).
			Move(isa.R1, asm.R(isa.A0)).
			MoveI(isa.A1, rt.AppBase).
			St(isa.R1, asm.Mem(isa.A1, 0)).
			Halt()
	})
	m := machine.MustNew(machine.Grid(1, 1, 1), p)
	r := rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
	key := word.New(word.TagPtr, 777)
	r.DefineName(0, key, word.Int(4242))
	m.Nodes[0].Xl.Invalidate(key) // force a hardware miss
	rt.StartNode(m, p, 0, "main")
	if err := m.RunUntilHalt(0, 1000); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Nodes[0].Mem.Read(rt.AppBase)
	if got.Data() != 4242 {
		t.Fatalf("xlate result = %v", got)
	}
	if m.Stats.Nodes[0].XlateFaults != 1 {
		t.Errorf("xlate faults = %d", m.Stats.Nodes[0].XlateFaults)
	}
}

func TestId2Node(t *testing.T) {
	p := buildWith(t, func(b *asm.Builder) {
		b.Label("main").
			MoveI(isa.A0, rt.AppBase).
			Move(isa.R0, asm.Mem(isa.A0, 0)). // id to convert
			Bsr(isa.R3, rt.LId2Node).
			St(isa.R0, asm.Mem(isa.A0, 1)).
			Halt()
	})
	m := machine.MustNew(machine.Grid(4, 3, 2), p)
	rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
	for id := 0; id < m.NumNodes(); id++ {
		m2 := machine.MustNew(machine.Grid(4, 3, 2), p)
		rt.Attach(m2, rt.Info(p), rt.DefaultPolicy())
		m2.Nodes[0].Mem.Write(rt.AppBase, word.Int(int32(id)))
		rt.StartNode(m2, p, 0, "main")
		if err := m2.RunUntilHalt(0, 5000); err != nil {
			t.Fatal(err)
		}
		got, _ := m2.Nodes[0].Mem.Read(rt.AppBase + 1)
		if got != m2.Net.NodeWord(id) {
			t.Fatalf("id %d converted to %v, want %v", id, got, m2.Net.NodeWord(id))
		}
	}
	_ = m
}

func TestXlateMissUnknownKeyIsFatal(t *testing.T) {
	p := buildWith(t, func(b *asm.Builder) {
		b.Label("main").
			MoveI(isa.R0, 12345).
			Wtag(isa.R0, asm.Imm(int32(word.TagPtr))).
			Xlate(isa.A0, asm.R(isa.R0)).
			Halt()
	})
	m := machine.MustNew(machine.Grid(1, 1, 1), p)
	rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
	rt.StartNode(m, p, 0, "main")
	if err := m.RunUntilHalt(0, 1000); err == nil {
		t.Fatal("unknown name translated")
	}
}

func TestRemoteProducerRestartsConsumer(t *testing.T) {
	// The futures pattern across nodes: node 0's background thread
	// blocks on a cfut slot; node 1 sends the value to node 0's
	// synchronizing-write handler, which restarts the thread.
	p := buildWith(t, func(b *asm.Builder) {
		b.Label("consumer").
			MoveI(isa.A0, rt.AppBase).
			Move(isa.R0, asm.Mem(isa.A0, 0)). // suspends on cfut
			Add(isa.R0, asm.Imm(1)).
			MoveI(isa.A1, rt.AppBase+1).
			St(isa.R0, asm.Mem(isa.A1, 0)).
			Halt()
		b.Label("producer").
			MoveI(isa.R2, 30).
			Label("w").
			Sub(isa.R2, asm.Imm(1)).
			Bt(isa.R2, "w").
			MoveI(isa.R1, 0).
			Wtag(isa.R1, asm.Imm(int32(word.TagNode))).
			Send(asm.R(isa.R1)).
			MoveHdr(isa.R1, "deliver", 2).
			Send2E(isa.R1, asm.Imm(99)).
			Suspend()
		b.Label("deliver").
			MoveI(isa.A0, rt.AppBase).
			Move(isa.R0, asm.Mem(isa.A3, 1)).
			Bsr(isa.R3, rt.LWriteSync).
			Suspend()
	})
	m := machine.MustNew(machine.Grid(2, 1, 1), p)
	r := rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
	m.Nodes[0].Mem.FillCfut(rt.AppBase, 1)
	rt.StartNode(m, p, 0, "consumer")
	rt.StartNode(m, p, 1, "producer")
	if err := m.RunUntilHalt(0, 10_000); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Nodes[0].Mem.Read(rt.AppBase + 1)
	if got.Data() != 100 {
		t.Errorf("restarted consumer computed %v, want 100", got)
	}
	if r.SavedThreads(0) != 0 {
		t.Error("saved thread leaked")
	}
}

func TestWriteSyncPlainOverwrite(t *testing.T) {
	// Writing a slot that holds a plain value must not trip the restart
	// machinery, repeatedly.
	p := buildWith(t, func(b *asm.Builder) {
		b.Label("main").
			MoveI(isa.A0, rt.AppBase).
			MoveI(isa.R2, 5).
			Label("loop").
			Move(isa.R0, asm.R(isa.R2)).
			Bsr(isa.R3, rt.LWriteSync).
			Sub(isa.R2, asm.Imm(1)).
			Bt(isa.R2, "loop").
			Halt()
	})
	m := machine.MustNew(machine.Grid(1, 1, 1), p)
	rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
	m.Nodes[0].Mem.Write(rt.AppBase, word.Int(0))
	rt.StartNode(m, p, 0, "main")
	if err := m.RunUntilHalt(0, 1000); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Nodes[0].Mem.Read(rt.AppBase)
	if got.Data() != 1 { // last iteration writes R2 == 1
		t.Errorf("slot = %v", got)
	}
	if m.Stats.Nodes[0].CfutFaults != 0 {
		t.Error("plain writes tripped faults")
	}
}
