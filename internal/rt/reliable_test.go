package rt_test

import (
	"strings"
	"testing"

	"jmachine/internal/machine"
	"jmachine/internal/network"
	"jmachine/internal/rt"
)

// pingReliable builds a 1×2 ping machine with checksum protection and
// the reliable-delivery runtime enabled, returning the machine and the
// reliable layer before any traffic is started.
func pingReliable(t *testing.T, cfg rt.ReliableConfig) (*machine.Machine, *rt.Reliable) {
	t.Helper()
	p := buildWith(t, pingClient)
	m := machine.MustNew(machine.Grid(2, 1, 1), p)
	m.Net.SetChecksum(true)
	r := rt.Attach(m, rt.Info(p), rt.DefaultPolicy())
	rel := rt.EnableReliable(r, cfg)
	m.Nodes[0].Mem.Write(rt.AppBase, m.Net.NodeWord(1))
	return m, rel
}

func TestReliableCleanPathOverhead(t *testing.T) {
	// With no faults the reliable layer must be invisible apart from
	// ack traffic: the ping completes and every tracked message acks.
	m, rel := pingReliable(t, rt.ReliableConfig{})
	rt.StartNode(m, m.Nodes[0].Prog, 0, "main")
	runFlagged(t, m)
	// Let the final ack (for the reply that raised the flag) land.
	if err := m.RunWhile(func(m *machine.Machine) bool {
		return rel.Pending() > 0
	}, 10_000); err != nil {
		t.Fatal(err)
	}
	s := rel.Stats()
	if s.Tracked == 0 {
		t.Fatal("no messages tracked")
	}
	if s.AcksReceived != s.Tracked {
		t.Errorf("acks %d/%d tracked", s.AcksReceived, s.Tracked)
	}
	if s.Retries != 0 || s.Failures != 0 {
		t.Errorf("clean run saw retries=%d failures=%d", s.Retries, s.Failures)
	}
}

func TestReliableRecoversCorruptDrop(t *testing.T) {
	// The first data message is corrupted on the wire: checksum drops
	// it, the ack never comes, and the retransmit path must redeliver a
	// clean copy so the ping still completes.
	m, rel := pingReliable(t, rt.ReliableConfig{TimeoutCycles: 256, ScanInterval: 16})
	armed := true
	m.Net.AddInjectFn(func(node int, msg *network.Message, cycle int64) {
		if armed && !msg.Ctl {
			msg.CorruptWord, msg.CorruptMask = 1, 0x10
			armed = false
		}
	})
	rt.StartNode(m, m.Nodes[0].Prog, 0, "main")
	runFlagged(t, m)
	s := rel.Stats()
	if s.Retries == 0 {
		t.Error("recovery without a retry — corruption was not injected?")
	}
	if s.Failures != 0 {
		t.Errorf("failures = %d, want 0", s.Failures)
	}
	if m.Net.Stats().CorruptDrops != 1 {
		t.Errorf("CorruptDrops = %d, want 1", m.Net.Stats().CorruptDrops)
	}
}

func TestReliableDeduplicatesLateDuplicate(t *testing.T) {
	// Corrupt the ACK instead of the data message: the data arrives,
	// the receiver's ack is dropped, the sender retransmits, and the
	// receiver must ack again while filtering the duplicate body.
	m, rel := pingReliable(t, rt.ReliableConfig{TimeoutCycles: 256, ScanInterval: 16})
	armed := true
	m.Net.AddInjectFn(func(node int, msg *network.Message, cycle int64) {
		if armed && msg.Ctl {
			msg.CorruptWord, msg.CorruptMask = 1, 0x10
			armed = false
		}
	})
	rt.StartNode(m, m.Nodes[0].Prog, 0, "main")
	runFlagged(t, m)
	// The ping completes before the ack timeout fires; keep the clock
	// running until the retransmission round-trips.
	if err := m.RunWhile(func(m *machine.Machine) bool {
		return rel.Pending() > 0 && m.Cycle() < 50_000
	}, 100_000); err != nil {
		t.Fatal(err)
	}
	s := rel.Stats()
	if s.DupAcked == 0 {
		t.Error("duplicate retransmission was not re-acked")
	}
	if got := m.Net.Stats().DupDrops; got == 0 {
		t.Error("duplicate body was not filtered")
	}
}

func TestReliableMaxRetriesSurfacesFailure(t *testing.T) {
	// The receiver is killed before traffic starts: every ack times
	// out, and after MaxRetries the sender node must fail loudly with
	// a descriptive error instead of retrying forever.
	m, rel := pingReliable(t, rt.ReliableConfig{
		TimeoutCycles: 64, MaxRetries: 2, ScanInterval: 16,
	})
	m.Nodes[1].Kill()
	rt.StartNode(m, m.Nodes[0].Prog, 0, "main")
	err := m.RunWhile(func(m *machine.Machine) bool { return true }, 1_000_000)
	if err == nil {
		t.Fatal("dead receiver went unnoticed")
	}
	if !strings.Contains(err.Error(), "reliable") {
		t.Errorf("error does not name the reliable layer: %v", err)
	}
	s := rel.Stats()
	if s.Failures == 0 {
		t.Error("no delivery failure recorded")
	}
	if s.Retries != 2 {
		t.Errorf("retries = %d, want MaxRetries = 2", s.Retries)
	}
	if m.Cycle() >= 1_000_000 {
		t.Error("failure did not bound the run")
	}
}
