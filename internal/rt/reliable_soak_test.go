package rt_test

import (
	"testing"

	"jmachine/internal/apps/radix"
	"jmachine/internal/machine"
	"jmachine/internal/rt"
)

// TestReliableDupFilterBounded soaks the reliable layer under a full
// application's traffic and asserts the duplicate filter is bounded by
// protocol activity, not by total messages ever delivered: entries
// older than the longest possible retransmission schedule are pruned,
// so the filter's high-water mark must stay well below the tracked
// total on a long run.
func TestReliableDupFilterBounded(t *testing.T) {
	// TimeoutCycles 512 with MaxRetries 2 keeps the retransmission
	// window (and so the filter's retention horizon) a small fraction
	// of the ~50k-cycle run while staying far above the real ack RTT.
	cfg := rt.ReliableConfig{TimeoutCycles: 512, MaxRetries: 2, ScanInterval: 16}
	var rel *rt.Reliable
	maxSeen := 0
	setup := func(m *machine.Machine, r *rt.Runtime) {
		m.Net.SetChecksum(true)
		rel = rt.EnableReliable(r, cfg)
		m.AddCycleHook(func(c int64) {
			if c%64 != 0 {
				return
			}
			if s := rel.DupFilterSize(); s > maxSeen {
				maxSeen = s
			}
		}, func(now int64) int64 { return (now/64 + 1) * 64 })
	}
	res, err := radix.Run(8, radix.Params{Keys: 512, Setup: setup})
	if err != nil {
		t.Fatal(err)
	}
	s := rel.Stats()
	t.Logf("cycles=%d tracked=%d retries=%d filter high-water=%d final=%d",
		res.Cycles, s.Tracked, s.Retries, maxSeen, rel.DupFilterSize())
	if s.Failures != 0 {
		t.Fatalf("soak saw %d delivery failures", s.Failures)
	}
	if s.Tracked < 1000 {
		t.Fatalf("soak generated only %d tracked messages — not a soak", s.Tracked)
	}
	if maxSeen == 0 {
		t.Fatal("duplicate filter never held an entry — sampling broken?")
	}
	// The bound: without pruning the filter would end at Tracked
	// entries; with aging it must stay a small fraction of that.
	if limit := int(s.Tracked) / 2; maxSeen >= limit {
		t.Errorf("duplicate filter high-water %d >= %d (half of %d tracked) — aging is not bounding it",
			maxSeen, limit, s.Tracked)
	}
	if final := rel.DupFilterSize(); final > maxSeen {
		t.Errorf("final filter size %d above observed high-water %d", final, maxSeen)
	}
}
