package rt

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"jmachine/internal/ckpt/wire"
	"jmachine/internal/mdp"
	"jmachine/internal/word"
)

// Checkpoint sections for the system software. The runtime and the
// reliable-delivery layer satisfy internal/ckpt's Saver interface
// structurally — this package imports only the wire codec, never the
// orchestrator. Maps are encoded in sorted-key order so identical
// state always produces identical bytes.

const (
	rtFormat  = 1
	relFormat = 1
)

// CkptName names the runtime's checkpoint section.
func (r *Runtime) CkptName() string { return "rt" }

// CkptSave serializes the per-node runtime state: suspended threads
// awaiting presence-tag values, the waiter-id counter, and the
// memory-resident name tables. NodeState.User (language-runtime state)
// is not serialized; no current workload populates it, and a runtime
// that does must carry its own section.
func (r *Runtime) CkptSave(e *wire.Encoder) {
	e.U32(rtFormat)
	e.Int(len(r.nodes))
	for _, ns := range r.nodes {
		e.I32(ns.nextWaiter)
		ids := make([]int32, 0, len(ns.saved))
		for id := range ns.saved { //jm:maporder keys are collected then sorted before encoding; order cannot leak
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		e.Int(len(ids))
		for _, id := range ids {
			st := ns.saved[id]
			e.I32(id)
			e.Int(st.level)
			for _, reg := range st.ctx.Regs {
				e.U64(uint64(reg))
			}
			e.I32(st.ctx.IP)
			e.Bool(st.ctx.Running)
			e.I32(st.ctx.HandlerIP)
		}
		keys := make([]word.Word, 0, len(ns.names))
		for k := range ns.names { //jm:maporder keys are collected then sorted before encoding; order cannot leak
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return uint64(keys[i]) < uint64(keys[j]) })
		e.Int(len(keys))
		for _, k := range keys {
			e.U64(uint64(k))
			e.U64(uint64(ns.names[k]))
		}
	}
}

// CkptRestore rebuilds the per-node runtime state.
func (r *Runtime) CkptRestore(d *wire.Decoder) error {
	if f := d.U32(); f != rtFormat {
		return fmt.Errorf("rt: checkpoint section format %d, want %d", f, rtFormat)
	}
	if n := d.Int(); n != len(r.nodes) {
		return fmt.Errorf("rt: checkpoint has %d nodes, runtime has %d", n, len(r.nodes))
	}
	for _, ns := range r.nodes {
		ns.nextWaiter = d.I32()
		nSaved := d.Count(1 + 8*8)
		ns.saved = make(map[int32]savedThread, nSaved)
		for i := 0; i < nSaved; i++ {
			id := d.I32()
			st := savedThread{level: d.Int()}
			for reg := range st.ctx.Regs {
				st.ctx.Regs[reg] = word.Word(d.U64())
			}
			st.ctx.IP = d.I32()
			st.ctx.Running = d.Bool()
			st.ctx.HandlerIP = d.I32()
			if st.level < 0 || st.level >= mdp.NumLevels {
				return fmt.Errorf("rt: saved thread %d has level %d out of range", id, st.level)
			}
			if _, dup := ns.saved[id]; dup {
				return fmt.Errorf("rt: duplicate saved thread id %d in checkpoint", id)
			}
			ns.saved[id] = st
		}
		nNames := d.Count(16)
		ns.names = make(map[word.Word]word.Word, nNames)
		for i := 0; i < nNames; i++ {
			k := word.Word(d.U64())
			v := word.Word(d.U64())
			if _, dup := ns.names[k]; dup {
				return fmt.Errorf("rt: duplicate name %x in checkpoint", uint64(k))
			}
			ns.names[k] = v
		}
	}
	return d.Err()
}

// CkptName names the reliable-delivery checkpoint section.
func (rel *Reliable) CkptName() string { return "rt.reliable" }

// CkptSave serializes the protocol state: per-node sequence counters
// and pending retransmission records, the delivery-side duplicate
// filter, the counters, and any surfaced failure. The configuration is
// included and verified on restore — timeouts and retry budgets shape
// every recorded deadline.
func (rel *Reliable) CkptSave(e *wire.Encoder) {
	e.U32(relFormat)
	e.I64(rel.cfg.TimeoutCycles)
	e.Int(rel.cfg.MaxRetries)
	e.I64(rel.cfg.ScanInterval)
	e.Int(len(rel.nodes))
	for i := range rel.nodes {
		rn := &rel.nodes[i]
		e.I32(rn.count)
		seqs := make([]int32, 0, len(rn.pending))
		for seq := range rn.pending { //jm:maporder keys are collected then sorted before encoding; order cannot leak
			seqs = append(seqs, seq)
		}
		sort.Slice(seqs, func(a, b int) bool { return seqs[a] < seqs[b] })
		e.Int(len(seqs))
		for _, seq := range seqs {
			p := rn.pending[seq]
			e.I32(seq)
			e.Int(p.src)
			e.U8(uint8(p.destX))
			e.U8(uint8(p.destY))
			e.U8(uint8(p.destZ))
			e.U8(uint8(p.pri))
			e.Int(len(p.words))
			for _, w := range p.words {
				e.U64(uint64(w))
			}
			e.I64(p.deadline)
			e.Int(p.attempts)
		}
	}
	seqs := make([]int32, 0, len(rel.seen))
	for seq := range rel.seen { //jm:maporder keys are collected then sorted before encoding; order cannot leak
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(a, b int) bool { return seqs[a] < seqs[b] })
	e.Int(len(seqs))
	for _, seq := range seqs {
		e.I32(seq)
		e.I64(rel.seen[seq])
	}
	s := rel.Stats()
	for _, v := range [...]uint64{s.Tracked, s.AcksSent, s.AcksReceived, s.Retries, s.DupAcked, s.Failures} {
		e.U64(v)
	}
	if rel.err != nil {
		e.Bool(true)
		e.String(rel.err.Error())
	} else {
		e.Bool(false)
	}
}

// CkptRestore rebuilds the protocol state. A surfaced failure is
// restored as a fresh error with the identical message — Err's only
// consumers treat it as opaque.
func (rel *Reliable) CkptRestore(d *wire.Decoder) error {
	if f := d.U32(); f != relFormat {
		return fmt.Errorf("rt: reliable checkpoint section format %d, want %d", f, relFormat)
	}
	to, mr, si := d.I64(), d.Int(), d.I64()
	if to != rel.cfg.TimeoutCycles || mr != rel.cfg.MaxRetries || si != rel.cfg.ScanInterval {
		return fmt.Errorf("rt: reliable checkpoint config (timeout %d, retries %d, scan %d) != configured (%d, %d, %d)",
			to, mr, si, rel.cfg.TimeoutCycles, rel.cfg.MaxRetries, rel.cfg.ScanInterval)
	}
	if n := d.Int(); n != len(rel.nodes) {
		return fmt.Errorf("rt: reliable checkpoint has %d nodes, machine has %d", n, len(rel.nodes))
	}
	for i := range rel.nodes {
		rn := &rel.nodes[i]
		rn.count = d.I32()
		nPending := d.Count(4 + 8)
		rn.pending = nil
		if nPending > 0 {
			rn.pending = make(map[int32]*pendingMsg, nPending)
		}
		for j := 0; j < nPending; j++ {
			seq := d.I32()
			p := &pendingMsg{src: d.Int()}
			p.destX = int8(d.U8())
			p.destY = int8(d.U8())
			p.destZ = int8(d.U8())
			p.pri = int8(d.U8())
			nw := d.Count(8)
			p.words = make([]word.Word, nw)
			for w := range p.words {
				p.words[w] = word.Word(d.U64())
			}
			p.deadline = d.I64()
			p.attempts = d.Int()
			if err := d.Err(); err != nil {
				return err
			}
			if rel.seqNode(seq) != i {
				return fmt.Errorf("rt: pending seq %d recorded under node %d, stripes to node %d", seq, i, rel.seqNode(seq))
			}
			if _, dup := rn.pending[seq]; dup {
				return fmt.Errorf("rt: duplicate pending seq %d in checkpoint", seq)
			}
			rn.pending[seq] = p
		}
	}
	nSeen := d.Count(4 + 8)
	rel.seen = make(map[int32]int64, nSeen)
	for i := 0; i < nSeen; i++ {
		seq := d.I32()
		at := d.I64()
		if _, dup := rel.seen[seq]; dup {
			return fmt.Errorf("rt: duplicate delivered seq %d in checkpoint", seq)
		}
		rel.seen[seq] = at
	}
	atomic.StoreUint64(&rel.stats.Tracked, d.U64())
	atomic.StoreUint64(&rel.stats.AcksSent, d.U64())
	atomic.StoreUint64(&rel.stats.AcksReceived, d.U64())
	atomic.StoreUint64(&rel.stats.Retries, d.U64())
	atomic.StoreUint64(&rel.stats.DupAcked, d.U64())
	atomic.StoreUint64(&rel.stats.Failures, d.U64())
	rel.err = nil
	if d.Bool() {
		rel.err = errors.New(d.String())
	}
	return d.Err()
}
