package rt

import (
	"fmt"
	"sort"
	"sync/atomic"

	"jmachine/internal/machine"
	"jmachine/internal/mdp"
	"jmachine/internal/network"
	"jmachine/internal/word"
)

// ReliableConfig tunes the reliable-delivery runtime.
type ReliableConfig struct {
	// TimeoutCycles is the base acknowledgement timeout; retransmission
	// n waits TimeoutCycles<<n (exponential backoff). Default 2048.
	TimeoutCycles int64
	// MaxRetries bounds retransmissions per message; exceeding it fails
	// the sending node with a surfaced error instead of retrying
	// forever — the issue's livelock-to-error conversion. Default 8.
	MaxRetries int
	// ScanInterval is how often (cycles) the timeout scan runs.
	// Default 64.
	ScanInterval int64
}

func (c ReliableConfig) withDefaults() ReliableConfig {
	if c.TimeoutCycles <= 0 {
		c.TimeoutCycles = 2048
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 8
	}
	if c.ScanInterval <= 0 {
		c.ScanInterval = 64
	}
	return c
}

// ReliableStats counts the protocol's work. The runtime's hooks fire
// from several goroutines under the parallel engine (injection from
// the node phase, acknowledgement retirement from per-node handler
// execution), so the counters are maintained atomically.
type ReliableStats struct {
	Tracked      uint64 // messages assigned sequence numbers
	AcksSent     uint64 // acknowledgements injected by receivers
	AcksReceived uint64 // acknowledgements retired at senders
	Retries      uint64 // retransmissions (timeout- or drop-triggered)
	DupAcked     uint64 // duplicate deliveries suppressed and re-acked
	Failures     uint64 // messages abandoned after MaxRetries
}

// pendingMsg is a sender-side retransmission record: enough to rebuild
// the message from scratch, because the in-flight copy is consumed (or
// corrupted) by the network.
type pendingMsg struct {
	src                 int
	destX, destY, destZ int8
	pri                 int8
	words               []word.Word
	deadline            int64
	attempts            int
}

// relNode is the per-source-node protocol state. Keeping the sequence
// counter and the pending map per node (rather than global) makes the
// injection path shard-local: two nodes injecting in the same cycle on
// different engine shards touch disjoint state, and the sequence
// numbers they draw are independent of injection order.
type relNode struct {
	count   int32 // messages sequenced by this node so far
	pending map[int32]*pendingMsg
}

// Reliable is the NI-level reliable-delivery runtime: every message
// injected while it is attached gets a sequence number; the receiving
// NI acknowledges delivery with a real priority-1 message dispatching
// the rt.dack handler; unacknowledged messages are retransmitted with
// exponential backoff, duplicates are suppressed at the delivery port,
// and a message still unacknowledged after MaxRetries fails its sender
// node with a diagnosable error instead of retrying forever.
//
// Concurrency contract under the parallel engine: onInject runs in the
// node phase and touches only the injecting node's relNode; onDeliver,
// onDrop, and retransmission run on the coordinator (commit phase and
// cycle hooks); filterDup runs in the network phase but only reads
// seen, which is written exclusively at commit; svcDack runs in the
// node phase on the owning node's relNode. Stats are atomic.
type Reliable struct {
	rt    *Runtime
	cfg   ReliableConfig
	nn    int32 // machine node count: the sequence-number stride
	nodes []relNode
	stats ReliableStats

	// seen maps delivered sequence numbers to their delivery cycle.
	// Entries older than the longest possible retransmission schedule
	// are pruned by tick, bounding the filter by protocol activity
	// rather than by total messages ever sent.
	seen map[int32]int64
	err  error // first MaxRetries exhaustion
}

// EnableReliable attaches the reliable-delivery runtime. The machine's
// program must include the rt library with the rt.dack handler (any
// program assembled against the current BuildLib does).
func EnableReliable(r *Runtime, cfg ReliableConfig) *Reliable {
	if r.dack <= 0 {
		panic("rt: EnableReliable requires a program with the rt.dack handler (rebuild with BuildLib)")
	}
	rel := &Reliable{
		rt:    r,
		cfg:   cfg.withDefaults(),
		nn:    int32(r.M.NumNodes()),
		nodes: make([]relNode, r.M.NumNodes()),
		seen:  make(map[int32]int64),
	}
	r.RegisterService(SvcDack, rel.svcDack)
	net := r.M.Net
	net.AddInjectFn(rel.onInject)
	net.AddDeliverFn(rel.onDeliver)
	net.AddDropFn(rel.onDrop)
	net.SetFilterFn(rel.filterDup)
	r.M.AddCycleHook(rel.tick, rel.horizon) //jm:horizon nearest retransmit deadline (or none pending) bounds tick's next effect
	return rel
}

// horizon declares tick's event horizon: with no pending messages the
// scan is a guaranteed no-op on every cycle (NoEvent); otherwise the
// next ScanInterval multiple, where a timeout could retransmit or fail
// a node. Pending entries are only created by injection hooks — which
// require a node to execute a send, so the machine cannot be skipping —
// making the no-pending declaration safe across a whole dead window.
func (rel *Reliable) horizon(now int64) int64 {
	if rel.Pending() == 0 {
		return machine.NoEvent
	}
	return (now/rel.cfg.ScanInterval + 1) * rel.cfg.ScanInterval
}

// Stats returns a snapshot of the protocol counters.
func (rel *Reliable) Stats() ReliableStats {
	return ReliableStats{
		Tracked:      atomic.LoadUint64(&rel.stats.Tracked),
		AcksSent:     atomic.LoadUint64(&rel.stats.AcksSent),
		AcksReceived: atomic.LoadUint64(&rel.stats.AcksReceived),
		Retries:      atomic.LoadUint64(&rel.stats.Retries),
		DupAcked:     atomic.LoadUint64(&rel.stats.DupAcked),
		Failures:     atomic.LoadUint64(&rel.stats.Failures),
	}
}

// Pending returns how many messages await acknowledgement.
func (rel *Reliable) Pending() int {
	n := 0
	for i := range rel.nodes {
		n += len(rel.nodes[i].pending)
	}
	return n
}

// Err returns the first retransmission-exhaustion error, if any (also
// surfaced through the failing node's Fatal and the machine run loops).
func (rel *Reliable) Err() error { return rel.err }

// seqFor draws the next sequence number for a source node: the node's
// local count striped by node id. Numbers are globally unique and
// nonzero, and — because each node draws from its own counter — the
// numbering is independent of the order nodes inject in a cycle.
func (rel *Reliable) seqFor(node int) int32 {
	rn := &rel.nodes[node]
	seq := rn.count*rel.nn + int32(node) + 1
	rn.count++
	return seq
}

// seqNode recovers the source node a sequence number was drawn by.
func (rel *Reliable) seqNode(seq int32) int { return int((seq - 1) % rel.nn) }

// onInject assigns a sequence number to every fresh application
// message and snapshots it for retransmission. Control traffic (acks)
// and already-sequenced retransmissions pass through untouched.
func (rel *Reliable) onInject(node int, m *network.Message, cycle int64) {
	if m.Ctl || m.Seq != 0 {
		return
	}
	m.Seq = rel.seqFor(node)
	p := &pendingMsg{
		src:   node,
		destX: m.DestX, destY: m.DestY, destZ: m.DestZ,
		pri:      m.Pri,
		words:    append([]word.Word(nil), m.Words...),
		deadline: cycle + rel.cfg.TimeoutCycles,
	}
	rn := &rel.nodes[node]
	if rn.pending == nil {
		rn.pending = make(map[int32]*pendingMsg)
	}
	rn.pending[m.Seq] = p
	atomic.AddUint64(&rel.stats.Tracked, 1)
}

// onDeliver acknowledges a tracked message's arrival: the receiving NI
// marks the sequence seen and injects a 2-word priority-1 ack back to
// the sender, where it dispatches rt.dack.
func (rel *Reliable) onDeliver(node int, m *network.Message, cycle int64) {
	if m.Ctl || m.Seq == 0 {
		return
	}
	rel.seen[m.Seq] = cycle
	if rel.niAlive(node) {
		rel.sendAck(node, int(m.Src), m.Seq)
	}
}

// niAlive reports whether node's network interface can generate acks:
// the NI shares the node's fate, so a frozen node stays silent until
// thawed (the sender retries) and a killed node never acks (the sender
// exhausts MaxRetries and surfaces the failure).
func (rel *Reliable) niAlive(node int) bool {
	n := rel.rt.M.Nodes[node]
	return !n.Killed() && !n.Frozen()
}

// filterDup suppresses retransmitted copies of already-delivered
// messages at the delivery port, re-acknowledging in case the earlier
// ack was lost.
func (rel *Reliable) filterDup(node int, m *network.Message, cycle int64) bool {
	if m.Ctl || m.Seq == 0 {
		return false
	}
	if _, dup := rel.seen[m.Seq]; !dup {
		return false
	}
	if rel.niAlive(node) {
		atomic.AddUint64(&rel.stats.DupAcked, 1)
		rel.sendAck(node, int(m.Src), m.Seq)
	}
	return true
}

// onDrop reacts to the network permanently discarding a worm (checksum
// failure, MaxReturns exhaustion): the retransmission deadline is
// pulled in so the next timeout scan resends without waiting out the
// full backoff. Lost acks are left to the sender's timeout.
func (rel *Reliable) onDrop(node int, m *network.Message, reason network.DropReason, cycle int64) {
	if m.Ctl || m.Seq == 0 {
		return
	}
	// A filtered duplicate means the original already arrived — the
	// ack is in flight or the receiver is frozen. Accelerating the
	// retransmission would spin the retry budget against a silent
	// receiver; leave the backoff schedule alone.
	if reason == network.DropFiltered {
		return
	}
	if p, ok := rel.nodes[rel.seqNode(m.Seq)].pending[m.Seq]; ok {
		p.deadline = cycle
	}
}

// sendAck injects the acknowledgement message. Acks are privileged NI
// traffic: they bypass the outbox capacity check (the hardware would
// reserve NI buffer space for them) but still traverse the mesh and
// consume handler cycles at the sender.
func (rel *Reliable) sendAck(from, to int, seq int32) {
	net := rel.rt.M.Net
	x, y, z := net.NodeCoords(to)
	ack := network.NewMessage()
	ack.DestX, ack.DestY, ack.DestZ = int8(x), int8(y), int8(z)
	ack.Pri, ack.Src, ack.Ctl = 1, int32(from), true
	ack.Words = append(ack.Words, word.MsgHeader(rel.rt.dack, 2), word.Int(seq))
	net.Inject(from, ack, 0)
	atomic.AddUint64(&rel.stats.AcksSent, 1)
}

// svcDack retires an acknowledgement at the sender: message word 1
// carries the sequence number. Runs on the acked node, touching only
// its own pending map.
func (rel *Reliable) svcDack(n *mdp.Node, ns *NodeState, f mdp.Fault) (int32, mdp.FaultAction) {
	q := n.Queues[1]
	if f.Level == mdp.LvlP0 {
		q = n.Queues[0]
	}
	seq := q.WordAt(1).Data()
	if _, ok := rel.nodes[n.ID].pending[seq]; ok {
		delete(rel.nodes[n.ID].pending, seq)
		atomic.AddUint64(&rel.stats.AcksReceived, 1)
	}
	return 2, mdp.ActAdvance
}

// tick is the machine cycle hook: every ScanInterval cycles it scans
// pending messages (in ascending sequence order, for determinism) and
// retransmits those whose deadline has passed.
func (rel *Reliable) tick(cycle int64) {
	if cycle%rel.cfg.ScanInterval != 0 {
		return
	}
	rel.pruneSeen(cycle)
	var due []int32
	for i := range rel.nodes {
		for seq, p := range rel.nodes[i].pending { //jm:maporder due set is sorted before any retransmit; iteration order cannot leak
			if p.deadline <= cycle {
				due = append(due, seq)
			}
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	for _, seq := range due {
		rel.retransmit(seq, rel.nodes[rel.seqNode(seq)].pending[seq], cycle)
	}
}

// dupWindow is how long a delivered sequence number must stay in the
// duplicate filter: longer than the worst-case retransmission schedule
// (the backoff sum is below TimeoutCycles<<(MaxRetries+1)), so a copy
// of a pruned message can no longer be in flight.
func (rel *Reliable) dupWindow() int64 {
	return rel.cfg.TimeoutCycles << (uint(rel.cfg.MaxRetries) + 2)
}

// pruneSeen ages the duplicate filter. It runs only while messages are
// pending: with none pending, horizon declares tick a no-op and
// fast-path runs skip the scan entirely, so pruning then would let the
// filter's contents depend on the stepping mode.
func (rel *Reliable) pruneSeen(cycle int64) {
	if rel.Pending() == 0 {
		return
	}
	cutoff := cycle - rel.dupWindow()
	for seq, at := range rel.seen { //jm:maporder the delete set depends only on entry values; iteration order cannot leak
		if at < cutoff {
			delete(rel.seen, seq)
		}
	}
}

// DupFilterSize returns how many delivered sequence numbers the
// duplicate filter currently retains (for tests).
func (rel *Reliable) DupFilterSize() int { return len(rel.seen) }

// retransmit resends one pending message as a fresh, clean copy (the
// sequence number is preserved; injected corruption is not), backing
// off exponentially. Exhausting MaxRetries fails the sending node.
func (rel *Reliable) retransmit(seq int32, p *pendingMsg, cycle int64) {
	if p.attempts >= rel.cfg.MaxRetries {
		delete(rel.nodes[rel.seqNode(seq)].pending, seq)
		atomic.AddUint64(&rel.stats.Failures, 1)
		err := fmt.Errorf("rt: reliable delivery of seq %d from node %d failed after %d retransmissions",
			seq, p.src, p.attempts)
		if rel.err == nil {
			rel.err = err
		}
		rel.rt.M.Nodes[p.src].Fail(err)
		return
	}
	p.attempts++
	atomic.AddUint64(&rel.stats.Retries, 1)
	p.deadline = cycle + rel.cfg.TimeoutCycles<<p.attempts
	m := network.NewMessage()
	m.DestX, m.DestY, m.DestZ = p.destX, p.destY, p.destZ
	m.Pri, m.Src, m.Seq = p.pri, int32(p.src), seq
	m.Words = append(m.Words, p.words...)
	rel.rt.M.Net.Inject(p.src, m, 0)
}
