package stats

import "sort"

func mix(h, v uint64) uint64 {
	h ^= v
	h *= 0x100000001b3
	h ^= h >> 29
	return h
}

// StateDigest folds the node's counters — including the per-handler
// map, iterated in sorted key order for determinism — into a running
// 64-bit digest, for the engine equivalence suite.
func (n *Node) StateDigest(h uint64) uint64 {
	for _, c := range n.Cycles {
		h = mix(h, uint64(c))
	}
	h = mix(h, n.Instrs)
	h = mix(h, n.Threads)
	h = mix(h, n.SendFaultCycles)
	h = mix(h, n.SendFaults)
	for v := 0; v < 2; v++ {
		h = mix(h, n.MsgsSent[v])
		h = mix(h, n.WordsSent[v])
	}
	h = mix(h, n.XlateFaults)
	h = mix(h, n.CfutFaults)
	h = mix(h, n.OverflowFaults)
	ips := make([]int32, 0, len(n.byHandler))
	for ip := range n.byHandler { //jm:maporder keys are collected then sorted before mixing; order cannot leak
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
	for _, ip := range ips {
		hs := n.byHandler[ip]
		h = mix(h, uint64(uint32(ip)))
		h = mix(h, hs.Invocations)
		h = mix(h, hs.Instrs)
		h = mix(h, hs.MsgWords)
	}
	return h
}
