package stats

import (
	"fmt"
	"sort"

	"jmachine/internal/ckpt/wire"
)

// curSentinel encodes "no thread class executing" for the cur pointer
// (-1 is a real handler key: background threads use ip = -1).
const curSentinel = int32(-0x80000000)

// SaveState serializes the node's counters and per-thread-class table.
// The handler map is written in ascending ip order so the encoding is
// byte-stable; cur is stored as its ip key and re-linked on restore.
func (n *Node) SaveState(e *wire.Encoder) {
	for _, c := range n.Cycles {
		e.I64(c)
	}
	e.U64(n.Instrs)
	e.U64(n.Threads)
	e.U64(n.SendFaultCycles)
	e.U64(n.SendFaults)
	for v := 0; v < 2; v++ {
		e.U64(n.MsgsSent[v])
		e.U64(n.WordsSent[v])
	}
	e.U64(n.XlateFaults)
	e.U64(n.CfutFaults)
	e.U64(n.OverflowFaults)

	ips := make([]int32, 0, len(n.byHandler))
	for ip := range n.byHandler { //jm:maporder keys are collected then sorted before encoding; order cannot leak
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
	e.Int(len(ips))
	cur := curSentinel
	for _, ip := range ips {
		h := n.byHandler[ip]
		e.I32(ip)
		e.U64(h.Invocations)
		e.U64(h.Instrs)
		e.U64(h.MsgWords)
		if n.cur == h {
			cur = ip
		}
	}
	e.I32(cur)
}

// RestoreState rebuilds the node's counters and handler table.
func (n *Node) RestoreState(d *wire.Decoder) error {
	for c := range n.Cycles {
		n.Cycles[c] = d.I64()
	}
	n.Instrs = d.U64()
	n.Threads = d.U64()
	n.SendFaultCycles = d.U64()
	n.SendFaults = d.U64()
	for v := 0; v < 2; v++ {
		n.MsgsSent[v] = d.U64()
		n.WordsSent[v] = d.U64()
	}
	n.XlateFaults = d.U64()
	n.CfutFaults = d.U64()
	n.OverflowFaults = d.U64()

	cnt := d.Count(4 + 24)
	n.byHandler = make(map[int32]*HandlerStats, cnt)
	for i := 0; i < cnt; i++ {
		ip := d.I32()
		h := &HandlerStats{
			Invocations: d.U64(),
			Instrs:      d.U64(),
			MsgWords:    d.U64(),
		}
		if _, dup := n.byHandler[ip]; dup {
			return fmt.Errorf("stats: duplicate handler ip %d in checkpoint", ip)
		}
		n.byHandler[ip] = h
	}
	curIP := d.I32()
	n.cur = nil
	if curIP != curSentinel {
		h, ok := n.byHandler[curIP]
		if !ok {
			return fmt.Errorf("stats: current handler ip %d missing from checkpoint table", curIP)
		}
		n.cur = h
	}
	return d.Err()
}
