// Package stats accumulates the measurements the paper reports: cycle
// attribution by function (Figure 6), per-thread-class counts (Table 4),
// and user/OS cost splits (Table 5).
//
// The real J-Machine lacked statistics-collection hardware — the paper's
// critique laments the missing cycle counter — so the authors instrumented
// applications with static basic-block evaluation and hand-placed dynamic
// counters. The simulator can do better: every cycle each node retires is
// attributed to exactly one category.
package stats

import "sort"

// Cat is a cycle category, matching Figure 6's breakdown.
type Cat uint8

const (
	// CatComp is useful computation (default for ordinary instructions).
	CatComp Cat = iota
	// CatComm covers SEND instructions and send-fault back-pressure
	// stalls.
	CatComm
	// CatSync covers message dispatch, SUSPEND, presence-tag faults and
	// the thread save/restore they trigger.
	CatSync
	// CatXlate covers ENTER/XLATE/PROBE and xlate-miss fault service.
	CatXlate
	// CatNNR covers node-number-register calculations: converting
	// linear node indices or virtual node ids to router addresses.
	// Code marks these regions explicitly via the RGN register.
	CatNNR
	// CatIdle is time with no runnable thread and no pending message.
	CatIdle

	NumCats
)

var catNames = [NumCats]string{"comp", "comm", "sync", "xlate", "nnr", "idle"}

// String returns the category's display name.
func (c Cat) String() string {
	if int(c) < len(catNames) {
		return catNames[c]
	}
	return "?"
}

// HandlerStats counts one thread class (message handler entry point).
type HandlerStats struct {
	Invocations uint64
	Instrs      uint64
	MsgWords    uint64 // sum of invoking message lengths
}

// Node accumulates one node's counters.
//
// Concurrency: Node is single-writer by construction — it is mutated
// only by its owning mdp.Node's Step, which the parallel engine runs
// on exactly one shard goroutine per cycle (and the sequential loop on
// one goroutine, trivially). Cross-node aggregation (stats.Machine,
// the watchdog scan) happens on the coordinator between cycles, after
// the node phase's barrier, so no merge step is needed.
type Node struct {
	Cycles  [NumCats]int64
	Instrs  uint64
	Threads uint64 // messages dispatched

	SendFaultCycles uint64 // cycles stalled on injection back-pressure
	SendFaults      uint64 // distinct send-fault events
	MsgsSent        [2]uint64
	WordsSent       [2]uint64
	XlateFaults     uint64
	CfutFaults      uint64
	OverflowFaults  uint64

	byHandler map[int32]*HandlerStats
	cur       *HandlerStats // stats of the thread class now executing
}

// NewNode returns an empty per-node accumulator.
func NewNode() *Node {
	return &Node{byHandler: make(map[int32]*HandlerStats)}
}

// Add attributes one cycle to category c.
func (n *Node) Add(c Cat) { n.Cycles[c]++ }

// AddN attributes k cycles to category c.
func (n *Node) AddN(c Cat, k int64) { n.Cycles[c] += k }

// BeginThread records a dispatch of the handler at code address ip
// invoked by a message of msgWords words, and directs subsequent
// instruction counts to that class. Background threads use ip = -1.
func (n *Node) BeginThread(ip int32, msgWords int) {
	n.Threads++
	h := n.byHandler[ip]
	if h == nil {
		h = &HandlerStats{}
		n.byHandler[ip] = h
	}
	h.Invocations++
	h.MsgWords += uint64(msgWords)
	n.cur = h
}

// SetCurrent redirects instruction accounting to the class at ip without
// counting an invocation (used when resuming a suspended thread).
func (n *Node) SetCurrent(ip int32) {
	h := n.byHandler[ip]
	if h == nil {
		h = &HandlerStats{}
		n.byHandler[ip] = h
	}
	n.cur = h
}

// CountInstr attributes one retired instruction.
func (n *Node) CountInstr() {
	n.Instrs++
	if n.cur != nil {
		n.cur.Instrs++
	}
}

// CountInstrN attributes k retired instructions at once. Valid only
// when the thread class cannot have changed across them (the compiled
// tier's fusion loop: dispatch and suspend both end a window).
func (n *Node) CountInstrN(k uint64) {
	n.Instrs += k
	if n.cur != nil {
		n.cur.Instrs += k
	}
}

// Handler returns the accumulated stats for a thread class, or nil.
func (n *Node) Handler(ip int32) *HandlerStats { return n.byHandler[ip] }

// TotalCycles returns the node's attributed cycle count.
func (n *Node) TotalCycles() int64 {
	var t int64
	for _, c := range n.Cycles {
		t += c
	}
	return t
}

// Machine aggregates per-node statistics.
type Machine struct {
	Nodes []*Node
}

// NewMachine returns accumulators for n nodes.
func NewMachine(n int) *Machine {
	m := &Machine{Nodes: make([]*Node, n)}
	for i := range m.Nodes {
		m.Nodes[i] = NewNode()
	}
	return m
}

// Cycles sums category c across nodes.
func (m *Machine) Cycles(c Cat) int64 {
	var t int64
	for _, n := range m.Nodes {
		t += n.Cycles[c]
	}
	return t
}

// Breakdown returns each category's share of total node-cycles, in
// category order (the Figure 6 bars).
func (m *Machine) Breakdown() [NumCats]float64 {
	var per [NumCats]int64
	var total int64
	for _, n := range m.Nodes {
		for c, v := range n.Cycles {
			per[c] += v
			total += v
		}
	}
	var out [NumCats]float64
	if total == 0 {
		return out
	}
	for c := range per {
		out[c] = float64(per[c]) / float64(total)
	}
	return out
}

// Instrs sums retired instructions across nodes.
func (m *Machine) Instrs() uint64 {
	var t uint64
	for _, n := range m.Nodes {
		t += n.Instrs
	}
	return t
}

// Threads sums dispatched threads across nodes.
func (m *Machine) Threads() uint64 {
	var t uint64
	for _, n := range m.Nodes {
		t += n.Threads
	}
	return t
}

// SendFaults sums distinct send-fault events across nodes.
func (m *Machine) SendFaults() uint64 {
	var t uint64
	for _, n := range m.Nodes {
		t += n.SendFaults
	}
	return t
}

// XlateFaults sums xlate-miss faults across nodes.
func (m *Machine) XlateFaults() uint64 {
	var t uint64
	for _, n := range m.Nodes {
		t += n.XlateFaults
	}
	return t
}

// HandlerTotal aggregates a thread class across all nodes.
func (m *Machine) HandlerTotal(ip int32) HandlerStats {
	var h HandlerStats
	for _, n := range m.Nodes {
		if s := n.Handler(ip); s != nil {
			h.Invocations += s.Invocations
			h.Instrs += s.Instrs
			h.MsgWords += s.MsgWords
		}
	}
	return h
}

// SendFaultSkew returns the ratio of the maximum per-node send-fault
// count to the mean — the paper verified certain nodes fault up to two
// orders of magnitude more than average during radix sort.
func (m *Machine) SendFaultSkew() float64 {
	var total, max uint64
	for _, n := range m.Nodes {
		total += n.SendFaults
		if n.SendFaults > max {
			max = n.SendFaults
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(m.Nodes))
	return float64(max) / mean
}

// IdleFraction returns idle cycles over total cycles.
func (m *Machine) IdleFraction() float64 {
	return m.Breakdown()[CatIdle]
}

// TopHandlers returns the ips of the k busiest thread classes by
// invocation count, machine-wide, busiest first.
func (m *Machine) TopHandlers(k int) []int32 {
	agg := make(map[int32]uint64)
	for _, n := range m.Nodes {
		for ip, h := range n.byHandler {
			agg[ip] += h.Invocations
		}
	}
	ips := make([]int32, 0, len(agg))
	for ip := range agg {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(i, j int) bool {
		if agg[ips[i]] != agg[ips[j]] {
			return agg[ips[i]] > agg[ips[j]]
		}
		return ips[i] < ips[j]
	})
	if len(ips) > k {
		ips = ips[:k]
	}
	return ips
}
