package stats

import "testing"

func TestAttribution(t *testing.T) {
	n := NewNode()
	n.Add(CatComp)
	n.Add(CatComp)
	n.AddN(CatComm, 3)
	n.Add(CatIdle)
	if n.Cycles[CatComp] != 2 || n.Cycles[CatComm] != 3 || n.Cycles[CatIdle] != 1 {
		t.Errorf("cycles = %v", n.Cycles)
	}
	if n.TotalCycles() != 6 {
		t.Errorf("total = %d", n.TotalCycles())
	}
}

func TestThreadClasses(t *testing.T) {
	n := NewNode()
	n.BeginThread(10, 3)
	n.CountInstr()
	n.CountInstr()
	n.BeginThread(20, 5)
	n.CountInstr()
	n.SetCurrent(10)
	n.CountInstr()
	if n.Threads != 2 {
		t.Errorf("threads = %d", n.Threads)
	}
	h10 := n.Handler(10)
	if h10.Invocations != 1 || h10.Instrs != 3 || h10.MsgWords != 3 {
		t.Errorf("h10 = %+v", h10)
	}
	h20 := n.Handler(20)
	if h20.Invocations != 1 || h20.Instrs != 1 || h20.MsgWords != 5 {
		t.Errorf("h20 = %+v", h20)
	}
	if n.Instrs != 4 {
		t.Errorf("instrs = %d", n.Instrs)
	}
}

func TestMachineAggregation(t *testing.T) {
	m := NewMachine(2)
	m.Nodes[0].Add(CatComp)
	m.Nodes[0].Add(CatComp)
	m.Nodes[1].Add(CatIdle)
	m.Nodes[1].Add(CatIdle)
	bd := m.Breakdown()
	if bd[CatComp] != 0.5 || bd[CatIdle] != 0.5 {
		t.Errorf("breakdown = %v", bd)
	}
	if m.Cycles(CatComp) != 2 {
		t.Errorf("comp cycles = %d", m.Cycles(CatComp))
	}
	if m.IdleFraction() != 0.5 {
		t.Errorf("idle = %v", m.IdleFraction())
	}

	m.Nodes[0].BeginThread(7, 2)
	m.Nodes[1].BeginThread(7, 2)
	m.Nodes[1].CountInstr()
	h := m.HandlerTotal(7)
	if h.Invocations != 2 || h.Instrs != 1 {
		t.Errorf("handler total = %+v", h)
	}
	if m.Threads() != 2 || m.Instrs() != 1 {
		t.Errorf("threads=%d instrs=%d", m.Threads(), m.Instrs())
	}
}

func TestSendFaultSkew(t *testing.T) {
	m := NewMachine(4)
	m.Nodes[0].SendFaults = 100
	m.Nodes[1].SendFaults = 1
	m.Nodes[2].SendFaults = 1
	m.Nodes[3].SendFaults = 2
	skew := m.SendFaultSkew()
	if skew < 3.8 || skew > 3.9 { // 100 / (104/4) = 3.846
		t.Errorf("skew = %v", skew)
	}
	if NewMachine(2).SendFaultSkew() != 0 {
		t.Error("skew of zero faults should be 0")
	}
}

func TestTopHandlers(t *testing.T) {
	m := NewMachine(2)
	for i := 0; i < 5; i++ {
		m.Nodes[0].BeginThread(1, 1)
	}
	for i := 0; i < 3; i++ {
		m.Nodes[1].BeginThread(2, 1)
	}
	m.Nodes[0].BeginThread(3, 1)
	top := m.TopHandlers(2)
	if len(top) != 2 || top[0] != 1 || top[1] != 2 {
		t.Errorf("top = %v", top)
	}
}

func TestCatNames(t *testing.T) {
	if CatComp.String() != "comp" || CatIdle.String() != "idle" || CatNNR.String() != "nnr" {
		t.Error("category names wrong")
	}
	if Cat(200).String() != "?" {
		t.Error("out-of-range category name")
	}
}

func TestEmptyBreakdown(t *testing.T) {
	m := NewMachine(1)
	bd := m.Breakdown()
	for _, v := range bd {
		if v != 0 {
			t.Error("empty machine has nonzero breakdown")
		}
	}
}
