// Benchmarks regenerating every table and figure of the paper's
// evaluation section, one testing.B target per artifact:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports paper-relevant metrics via b.ReportMetric so
// benchmark output doubles as a reproduction record (cycles, µs at the
// 12.5 MHz clock, Mbits/s). The benchmarks run the Quick experiment
// scale; use cmd/jm-tables -paper for paper-scale sweeps.
package jmachine_test

import (
	"strings"
	"testing"

	"jmachine/internal/bench"
)

var opts = bench.Options{Quick: true}

// BenchmarkSec21SequentialRates regenerates the Section 2.1 execution
// rates: peak, typical-internal, and external-memory MIPS.
func BenchmarkSec21SequentialRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.SequentialRates(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.PeakMIPS, "peak-MIPS")
		b.ReportMetric(r.TypicalMIPS, "typical-MIPS")
		b.ReportMetric(r.ExternalMIPS, "external-MIPS")
	}
}

// BenchmarkFig2RoundTripLatency regenerates Figure 2: round-trip latency
// versus distance for pings and remote reads.
func BenchmarkFig2RoundTripLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig2(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.SelfPingCycles), "selfping-cycles")
		b.ReportMetric(r.SlopePerHop, "cycles/hop-RTT")
	}
}

// BenchmarkTable1MessageOverhead regenerates Table 1: one-way message
// overhead against the published figures for contemporary machines.
func BenchmarkTable1MessageOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Table1(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SendCycles+r.ReceiveCycles, "cycles/msg")
	}
}

// BenchmarkFig3LatencyVsLoad regenerates the left panel of Figure 3:
// one-way latency versus bisection traffic under random traffic.
func BenchmarkFig3LatencyVsLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig3(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SaturationMbits, "saturation-Mbits/s")
	}
}

// BenchmarkFig3Efficiency regenerates the right panel of Figure 3:
// processor efficiency versus grain size (same experiment, second
// projection; kept separate so each figure has a named target).
func BenchmarkFig3Efficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig3(opts)
		if err != nil {
			b.Fatal(err)
		}
		last := r.Efficiency[0].Points[len(r.Efficiency[0].Points)-1]
		b.ReportMetric(last.Y, "coarse-grain-efficiency")
	}
}

// BenchmarkFig4TerminalBandwidth regenerates Figure 4: node-to-node
// bandwidth versus message size for the three receiver variants.
func BenchmarkFig4TerminalBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig4(opts)
		if err != nil {
			b.Fatal(err)
		}
		discard := r.Series[0].Points
		b.ReportMetric(discard[len(discard)-1].Y, "peak-Mbits/s")
	}
}

// BenchmarkTable2Synchronization regenerates Table 2: producer-consumer
// synchronization with and without presence tags.
func BenchmarkTable2Synchronization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Table2(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Tags[0]), "success-tags-cycles")
		b.ReportMetric(float64(r.NoTags[0]), "success-notags-cycles")
	}
}

// BenchmarkTable3Barrier regenerates Table 3: software barrier time
// versus machine size.
func BenchmarkTable3Barrier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Table3(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Measured[0], "2node-µs")
		b.ReportMetric(r.Measured[len(r.Measured)-1], "max-size-µs")
	}
}

// BenchmarkFig5Speedup regenerates Figure 5: speedup of the four
// applications across machine sizes.
func BenchmarkFig5Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig5(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range r.Series {
			unit := strings.ReplaceAll(s.Label, " ", "-") + "-speedup"
			b.ReportMetric(s.Points[len(s.Points)-1].Y, unit)
		}
	}
}

// BenchmarkFig6Breakdown regenerates Figure 6: the per-application
// breakdown of node-cycles by function.
func BenchmarkFig6Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig6(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Breakdown[0][5], "lcs-idle-pct")
	}
}

// BenchmarkTable4AppStats regenerates Table 4: per-thread-class
// application statistics.
func BenchmarkTable4AppStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Table4(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Apps[0].Classes[0].MsgLength, "nxtchar-msg-words")
	}
}

// BenchmarkAblations runs the design-choice ablations: hardware vs
// software dispatch, router arbitration fairness, and queue sizing.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := bench.AblateDispatch(opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bench.AblateArbitration(opts); err != nil {
			b.Fatal(err)
		}
		if _, err := bench.AblateQueueSize(opts); err != nil {
			b.Fatal(err)
		}
		if _, err := bench.AblateFlowControl(opts); err != nil {
			b.Fatal(err)
		}
		if _, err := bench.AblateNaming(opts); err != nil {
			b.Fatal(err)
		}
		_ = d
	}
}

// BenchmarkTable5TSP regenerates Table 5: the major components of cost
// for TSP under the CST runtime.
func BenchmarkTable5TSP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Table5(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Xlates), "xlates")
		b.ReportMetric(r.UserPerThread, "user-instr/thread")
	}
}
