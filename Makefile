# Convenience targets; everything is plain `go` underneath.

.PHONY: build test check tables bench

build:
	go build ./...

test:
	go test ./...

# Full verification: vet, race-detector tests, chaos smoke.
check:
	sh scripts/check.sh

# Regenerate the paper's tables and figures.
tables:
	go run ./cmd/jm-tables

# Engine benchmarks: testing.B suite + 512-node probe -> BENCH_engine.json.
bench:
	sh scripts/bench.sh
