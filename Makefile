# Convenience targets; everything is plain `go` underneath.

.PHONY: build test check lint tables bench ckpt-smoke serve-smoke serve-bench

build:
	go build ./...

test:
	go test ./...

# Full verification: vet, lint, race-detector tests, chaos smoke.
check:
	sh scripts/check.sh

# Determinism analyzers (JML001..6) + the MDP verifier/certifier
# smoke (ASM001..12).
# docs/LINT.md documents every diagnostic.
lint:
	go run ./cmd/jm-lint ./internal/...
	go run ./cmd/jm-jc -check examples/jlang/dotprod.j

# Regenerate the paper's tables and figures.
tables:
	go run ./cmd/jm-tables

# Engine benchmarks: testing.B suite + 512-node probe -> BENCH_engine.json.
bench:
	sh scripts/bench.sh

# Crash-recovery smoke: SIGKILL a checkpointing run, resume, compare
# digests against an uninterrupted run. docs/CHECKPOINT.md.
ckpt-smoke:
	sh scripts/ckpt_smoke.sh

# Multi-tenant serving smoke: SIGKILL the jm-serve daemon mid-session,
# restart, require byte-identical recovery + a verified jm-load run.
# docs/SERVE.md.
serve-smoke:
	sh scripts/serve_smoke.sh

# Full serving benchmark: 32 sessions, 10k+ verified requests ->
# BENCH_serve.json.
serve-bench:
	sh scripts/serve_bench.sh
