// Package jmachine is a cycle-level software reconstruction of the MIT
// J-Machine multicomputer, built to reproduce the architectural
// evaluation in Noakes, Wallach & Dally, "The J-Machine Multicomputer:
// An Architectural Evaluation" (ISCA 1993).
//
// The library models every mechanism the paper evaluates:
//
//   - the Message-Driven Processor: a 36-bit tagged-word core executing
//     an MDP-style instruction set with the paper's published timing
//     (one cycle with register operands, two with an internal-memory
//     operand, ~6-cycle external DRAM, 4-cycle message dispatch);
//   - a 3-D mesh network with deterministic e-cube wormhole routing,
//     0.5 words/cycle channels, 1 cycle/hop latency, two priorities with
//     fixed-priority arbitration, and injection back-pressure;
//   - hardware message queues with task dispatch from the queue head;
//   - presence tags (cfut/fut) with fault-driven thread suspension;
//   - the ENTER/XLATE name-translation cache behind the global
//     namespace;
//   - the system software: barrier library, remote reads, synchronizing
//     writes, and a miniature Concurrent-Smalltalk runtime;
//   - the four macro-benchmarks (LCS, Radix Sort, N-Queens, TSP) written
//     in simulated MDP assembly.
//
// Quick start:
//
//	b := jmachine.NewProgram()
//	b.Label("handler").
//	    Move(isa.R0, asm.Mem(isa.A3, 1)).
//	    Suspend()
//	prog := b.MustAssemble()
//	m := jmachine.MustNew(jmachine.Cube(2), prog)
//
// The bench package regenerates every table and figure of the paper's
// evaluation; the examples/ directory holds runnable walkthroughs; and
// cmd/jm-tables prints the full reproduction.
package jmachine

import (
	"jmachine/internal/asm"
	"jmachine/internal/bench"
	"jmachine/internal/machine"
	"jmachine/internal/mdp"
	"jmachine/internal/rt"
)

// Machine is a configured J-Machine: a mesh of MDP nodes plus a global
// cycle loop.
type Machine = machine.Machine

// Config describes a machine: mesh dimensions, memory sizes, queue
// capacities, and processor timing.
type Config = machine.Config

// Program is an assembled MDP program.
type Program = asm.Program

// Builder assembles MDP programs.
type Builder = asm.Builder

// Runtime is the system software instance attached to a machine.
type Runtime = rt.Runtime

// Cube returns the configuration of a k×k×k machine (the paper's
// experiments ran on an 8×8×8, 512-node machine).
func Cube(k int) Config { return machine.Cube(k) }

// Grid returns a machine with explicit mesh dimensions.
func Grid(x, y, z int) Config { return machine.Grid(x, y, z) }

// GridForNodes returns the most cubic mesh with exactly n nodes.
func GridForNodes(n int) Config { return machine.GridForNodes(n) }

// New builds a machine running prog on every node.
func New(cfg Config, prog *Program) (*Machine, error) { return machine.New(cfg, prog) }

// MustNew is New that panics on error.
func MustNew(cfg Config, prog *Program) *Machine { return machine.MustNew(cfg, prog) }

// NewProgram returns an empty program builder.
func NewProgram() *Builder { return asm.NewBuilder() }

// AttachRuntime installs the system software (fault handlers, boot
// constants) on a machine whose program includes the runtime library
// (see rt.BuildLib).
func AttachRuntime(m *Machine, prog *Program) *Runtime {
	return rt.Attach(m, rt.Info(prog), rt.DefaultPolicy())
}

// ClockHz is the simulated clock: 12.5 MHz.
const ClockHz = mdp.ClockHz

// CyclesToMicros converts simulated cycles to microseconds.
func CyclesToMicros(cycles float64) float64 { return mdp.CyclesToMicros(cycles) }

// BenchOptions tunes the experiment harness.
type BenchOptions = bench.Options
