#!/bin/sh
# Repo-wide verification: vet, the full test suite under the race
# detector, and a short deterministic chaos smoke test (two runs of the
# same seeded campaign must produce byte-identical output, and every
# workload must survive it with reliable delivery enabled).
set -eu
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== engine equivalence under the race detector"
# The parallel engine's determinism contract, gated explicitly: every
# workload digest-equal to the sequential loop, with the race detector
# checking the shard rendezvous protocol.
go test -race -count=1 ./internal/engine/

echo "== go test -race"
go test -race ./...

echo "== chaos smoke"
go build -o /tmp/jm-chaos-check ./cmd/jm-chaos
SMOKE='-workload all -seed 11 -reliable -watchdog 100000'
/tmp/jm-chaos-check $SMOKE > /tmp/jm-chaos-check-1.out
/tmp/jm-chaos-check $SMOKE > /tmp/jm-chaos-check-2.out
cmp /tmp/jm-chaos-check-1.out /tmp/jm-chaos-check-2.out
echo "chaos smoke: all workloads completed, output deterministic"

echo "== OK"
