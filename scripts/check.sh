#!/bin/sh
# Repo-wide verification: vet, the full test suite under the race
# detector, and a short deterministic chaos smoke test (two runs of the
# same seeded campaign must produce byte-identical output, and every
# workload must survive it with reliable delivery enabled).
set -eu
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== jm-lint (determinism analyzers, docs/LINT.md)"
# JML001..JML006 over the whole simulation tree; any diagnostic fails
# the build. The MDP assembly verifier and effect certifier
# (ASM001..ASM012) run inside `go test` below, swept over the rt
# library, every workload program, and compiled jlang shapes; the
# -check smoke here exercises the jm-jc surface.
go build -o /tmp/jm-lint-check ./cmd/jm-lint
/tmp/jm-lint-check ./internal/...
go build -o /tmp/jm-jc-check ./cmd/jm-jc
/tmp/jm-jc-check -check examples/jlang/dotprod.j

echo "== engine equivalence under the race detector"
# The parallel engine's determinism contract, gated explicitly: every
# workload digest-equal to the sequential loop — including the observed
# variants, whose recorder must leave the digest untouched, and the
# fast-path sweep (TestFastPathEquiv*: ping, barrier, and the four
# applications under {reference, event-horizon} x shards {1,2,4,7}) —
# with the race detector checking the shard rendezvous protocol and
# the recorder's staging path.
go test -race -count=1 ./internal/engine/

echo "== go test -race"
# The broad race pass runs -short: the slowest sweeps (every-cycle
# observability sampling, cross-shard table reruns) run at full depth
# race-free in the coverage pass below, and the engine package already
# ran complete under race above.
go test -race -short ./...

echo "== go test -cover"
go test -cover ./... | tee /tmp/jm-cover.out
echo "-- coverage summary"
awk '$1 == "ok" { for (i = 1; i <= NF; i++) if ($i == "coverage:") printf "%7s  %s\n", $(i+1), $2 }' \
    /tmp/jm-cover.out | sort -r
echo "-- coverage floors (internal/asm >= 90%, internal/compiled >= 80%)"
# internal/asm recovers handler CFGs and certifies effects, and
# internal/compiled turns them into closures; both are the compiled
# tier's trusted base, so their statement coverage is floored rather
# than merely reported — the verifier/certifier strictest, since every
# fusion license rests on it.
awk '$1 == "ok" && ($2 == "jmachine/internal/asm" || $2 == "jmachine/internal/compiled") {
        floor = ($2 == "jmachine/internal/asm") ? 90 : 80
        for (i = 1; i <= NF; i++) if ($i == "coverage:") {
            v = $(i+1); sub(/%/, "", v); found++
            printf "%7.1f%%  %s\n", v, $2
            if (v + 0 < floor) { printf "FAIL: %s below the %d%% floor\n", $2, floor; bad = 1 }
        }
    }
    END { if (found < 2) { print "FAIL: coverage rows for internal/asm + internal/compiled missing"; exit 1 }
          exit bad }' /tmp/jm-cover.out

echo "== chaos smoke"
go build -o /tmp/jm-chaos-check ./cmd/jm-chaos
SMOKE='-workload all -seed 11 -reliable -watchdog 100000'
/tmp/jm-chaos-check $SMOKE > /tmp/jm-chaos-check-1.out
/tmp/jm-chaos-check $SMOKE > /tmp/jm-chaos-check-2.out
cmp /tmp/jm-chaos-check-1.out /tmp/jm-chaos-check-2.out
echo "chaos smoke: all workloads completed, output deterministic"

echo "== fast-path equivalence smoke"
# Event-horizon stepping vs the reference loop at the CLI surface: the
# Table 4/5 text (thread statistics off full application runs) must be
# byte-identical under {reference, fast} x shards {1,4}. The engine
# suite above proves the same for ping, barrier, and LCS digests.
go build -o /tmp/jm-tables-check ./cmd/jm-tables
/tmp/jm-tables-check -quick -exp tab4,tab5 -shards 1 > /tmp/jm-tables-fast-1.out
/tmp/jm-tables-check -quick -exp tab4,tab5 -shards 4 > /tmp/jm-tables-fast-4.out
/tmp/jm-tables-check -quick -exp tab4,tab5 -reference -shards 1 > /tmp/jm-tables-ref-1.out
/tmp/jm-tables-check -quick -exp tab4,tab5 -reference -shards 4 > /tmp/jm-tables-ref-4.out
cmp /tmp/jm-tables-fast-1.out /tmp/jm-tables-fast-4.out
cmp /tmp/jm-tables-fast-1.out /tmp/jm-tables-ref-1.out
cmp /tmp/jm-tables-fast-1.out /tmp/jm-tables-ref-4.out
echo "fast-path smoke: Table 4/5 byte-identical across stepping modes"

echo "== compiled-tier equivalence smoke"
# The compiled handler tier at the CLI surface: all six workloads
# (pingpong, barrier, lcs, radix, nqueens, tsp) under the seeded chaos
# campaign must print byte-identical results with the tier on, at
# shards 1 and 4, as the interpreter run above produced. The package
# suites (internal/compiled) prove the same per-cycle and per-window;
# this proves the shipped binaries agree end to end.
/tmp/jm-chaos-check $SMOKE -compiled -shards 1 > /tmp/jm-chaos-compiled-1.out
/tmp/jm-chaos-check $SMOKE -compiled -shards 4 > /tmp/jm-chaos-compiled-4.out
cmp /tmp/jm-chaos-check-1.out /tmp/jm-chaos-compiled-1.out
cmp /tmp/jm-chaos-check-1.out /tmp/jm-chaos-compiled-4.out
echo "compiled smoke: six workloads byte-identical to the interpreter at shards 1 and 4"

echo "== checkpoint crash-recovery smoke"
# SIGKILL a checkpointing jm-chaos run after its first periodic
# checkpoint, resume in a fresh process, and require the final digest
# to match an uninterrupted run (docs/CHECKPOINT.md).
sh scripts/ckpt_smoke.sh

echo "== serve smoke"
# Multi-tenant daemon: create a session over HTTP, SIGKILL the daemon,
# restart on the same state dir, require byte-identical recovery, then
# a verified jm-load run (docs/SERVE.md).
sh scripts/serve_smoke.sh

echo "== mesh-scaling smoke"
# Epoch-batched engine at scale: the deterministic rendezvous probe
# (per-cycle vs epoch protocol, digest-equal, >=10x reduction floor)
# plus one 4096-node mesh row digest-checked against a sequential
# reference run (docs/ENGINE.md).
go build -o /tmp/jm-bench-check ./cmd/jm-bench
/tmp/jm-bench-check -mesh-smoke -mesh-cycles 1500
echo "mesh smoke: rendezvous floor held, 4K-node mesh digest-checked"

echo "== trace smoke"
# The observability CLI must produce a loadable timeline that is
# byte-identical sequential and sharded.
go build -o /tmp/jm-trace-check ./cmd/jm-trace
/tmp/jm-trace-check -perfetto /tmp/jm-trace-1.json -shards 1 > /dev/null
/tmp/jm-trace-check -perfetto /tmp/jm-trace-4.json -shards 4 > /dev/null
cmp /tmp/jm-trace-1.json /tmp/jm-trace-4.json
echo "trace smoke: timeline byte-identical across shard counts"

echo "== OK"
