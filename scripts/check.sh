#!/bin/sh
# Repo-wide verification: vet, the full test suite under the race
# detector, and a short deterministic chaos smoke test (two runs of the
# same seeded campaign must produce byte-identical output, and every
# workload must survive it with reliable delivery enabled).
set -eu
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== engine equivalence under the race detector"
# The parallel engine's determinism contract, gated explicitly: every
# workload digest-equal to the sequential loop — including the observed
# variants, whose recorder must leave the digest untouched — with the
# race detector checking the shard rendezvous protocol and the
# recorder's staging path.
go test -race -count=1 ./internal/engine/

echo "== go test -race"
# The broad race pass runs -short: the slowest sweeps (every-cycle
# observability sampling, cross-shard table reruns) run at full depth
# race-free in the coverage pass below, and the engine package already
# ran complete under race above.
go test -race -short ./...

echo "== go test -cover"
go test -cover ./... | tee /tmp/jm-cover.out
echo "-- coverage summary"
awk '$1 == "ok" { for (i = 1; i <= NF; i++) if ($i == "coverage:") printf "%7s  %s\n", $(i+1), $2 }' \
    /tmp/jm-cover.out | sort -r

echo "== chaos smoke"
go build -o /tmp/jm-chaos-check ./cmd/jm-chaos
SMOKE='-workload all -seed 11 -reliable -watchdog 100000'
/tmp/jm-chaos-check $SMOKE > /tmp/jm-chaos-check-1.out
/tmp/jm-chaos-check $SMOKE > /tmp/jm-chaos-check-2.out
cmp /tmp/jm-chaos-check-1.out /tmp/jm-chaos-check-2.out
echo "chaos smoke: all workloads completed, output deterministic"

echo "== trace smoke"
# The observability CLI must produce a loadable timeline that is
# byte-identical sequential and sharded.
go build -o /tmp/jm-trace-check ./cmd/jm-trace
/tmp/jm-trace-check -perfetto /tmp/jm-trace-1.json -shards 1 > /dev/null
/tmp/jm-trace-check -perfetto /tmp/jm-trace-4.json -shards 4 > /dev/null
cmp /tmp/jm-trace-1.json /tmp/jm-trace-4.json
echo "trace smoke: timeline byte-identical across shard counts"

echo "== OK"
