#!/bin/sh
# Engine benchmark harness: the testing.B suite (ns per machine cycle
# at two machine sizes and several shard counts) plus the 512-node
# Figure 3 loaded-exchange probe, folded into BENCH_engine.json by
# jm-bench. The probe also re-checks the determinism contract: the
# final state digests across shard counts must be equal.
#
# The recorded speedup depends on the host: the engine needs >= 4
# hardware threads to beat the sequential loop (the committed JSON
# records host_cores so numbers are comparable).
set -eu
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_engine.json}
GOBENCH=/tmp/jm-bench-go.txt

echo "== testing.B suite"
go test -run '^$' -bench BenchmarkEngine -benchtime 2000x ./internal/bench/ | tee "$GOBENCH"

echo "== 512-node probe"
go run ./cmd/jm-bench -gobench "$GOBENCH" -out "$OUT"

echo "== wrote $OUT"
