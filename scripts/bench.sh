#!/bin/sh
# Engine benchmark harness: the testing.B suite (ns per machine cycle
# at two machine sizes, several shard counts, and both stepping modes
# on the idle ring) plus the 512-node probes — the Figure 3 loaded
# exchange across shard counts, the token-ring idle workload under
# the reference loop and the event-horizon fast path, and the
# compiled-tier roofline (both fig3 shapes, interpreted and compiled,
# classified dispatch- vs memory-bound) and the fusion-coverage probe
# (per-handler send-distance certificates vs the old whole-image
# licensing, per shape) — folded into BENCH_engine.json by jm-bench. The probes also re-check the determinism contract:
# final state digests within each workload must be equal, whatever the
# shard count, stepping mode, or execution tier.
#
# The recorded engine speedup depends on the host: it needs >= 4
# hardware threads to beat the sequential loop (the committed JSON
# records host_cores so numbers are comparable). The fast-path ratio
# on the idle ring is host-independent. Re-running appends the previous
# file's summary to the JSON's history list, one entry per PR.
set -eu
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_engine.json}
LABEL=${2:-$(git rev-parse --short HEAD 2>/dev/null || echo local)}
GOBENCH=/tmp/jm-bench-go.txt

echo "== testing.B suite"
go test -run '^$' -bench BenchmarkEngine -benchtime 2000x ./internal/bench/ | tee "$GOBENCH"

echo "== 512-node probes"
go run ./cmd/jm-bench -gobench "$GOBENCH" -label "$LABEL" -out "$OUT"

echo "== wrote $OUT"
