#!/bin/sh
# Multi-tenant serving smoke: boot a jm-serve daemon, create a session
# over HTTP, drive it (step + kv traffic + timeline stream), SIGKILL
# the daemon mid-flight, restart it on the same state directory, and
# require the recovered session to (a) still answer, (b) report the
# exact digest it had at its last completed request, and (c) finish the
# remaining traffic with a digest byte-identical to a standalone replay
# of the whole stream (jm-load -verify). End-to-end proof that the
# per-request checkpoint commit makes kill -9 lose nothing
# (docs/SERVE.md).
set -eu
cd "$(dirname "$0")/.."

ADDR=${ADDR:-127.0.0.1:8093}
BASE="http://$ADDR/v1"
DIR=$(mktemp -d /tmp/jm-serve-smoke.XXXXXX)
PID=""
trap 'kill -9 $PID 2>/dev/null || true; rm -rf "$DIR"' EXIT

go build -o /tmp/jm-serve-smoke ./cmd/jm-serve
go build -o /tmp/jm-load-smoke ./cmd/jm-load

# curl -s --fail-with-body is not universal; roll a tiny JSON client.
req() { # req METHOD PATH [BODY]
    method=$1; path=$2; body=${3:-}
    if [ -n "$body" ]; then
        curl -sS -X "$method" -H 'Content-Type: application/json' -d "$body" "$BASE$path"
    else
        curl -sS -X "$method" "$BASE$path"
    fi
}

wait_up() {
    i=0
    until curl -sS -o /dev/null "$BASE/healthz" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -gt 500 ] && { echo "serve smoke: daemon did not come up" >&2; exit 1; }
        sleep 0.02
    done
}

/tmp/jm-serve-smoke -addr "$ADDR" -dir "$DIR/state" -max-resident 2 > "$DIR/serve1.log" 2>&1 &
PID=$!
wait_up

# Create a kv session with tracing on, step it, push a put batch.
ID=$(req POST /sessions '{"workload":"kv","nodes":4,"keys":16,"gateways":2,"trace":true}' \
    | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$ID" ] || { echo "serve smoke: create returned no id" >&2; exit 1; }
req POST "/sessions/$ID/step" '{"cycles":200}' > /dev/null
req POST "/sessions/$ID/kv" '{"ops":[{"op":"put","key":3,"value":42},{"op":"put","key":5,"value":7}]}' > /dev/null

# The streamed timeline must be a Perfetto document.
req GET "/sessions/$ID/timeline" | grep -q traceEvents \
    || { echo "serve smoke: timeline stream is not Perfetto JSON" >&2; exit 1; }

DIGEST_BEFORE=$(req GET "/sessions/$ID/digest" | sed -n 's/.*"digest": *"\([^"]*\)".*/\1/p')
[ -n "$DIGEST_BEFORE" ] || { echo "serve smoke: no digest before kill" >&2; exit 1; }

# Hard kill: no drain, no shutdown checkpoint. The per-request commit
# must already have everything on disk.
kill -9 "$PID"
wait "$PID" 2>/dev/null || true

/tmp/jm-serve-smoke -addr "$ADDR" -dir "$DIR/state" -max-resident 2 > "$DIR/serve2.log" 2>&1 &
PID=$!
wait_up
grep -q "recovered" "$DIR/serve2.log" \
    || { echo "serve smoke: restarted daemon recovered nothing" >&2; exit 1; }

DIGEST_AFTER=$(req GET "/sessions/$ID/digest" | sed -n 's/.*"digest": *"\([^"]*\)".*/\1/p')
if [ "$DIGEST_AFTER" != "$DIGEST_BEFORE" ]; then
    echo "serve smoke: digest after restart $DIGEST_AFTER != before kill $DIGEST_BEFORE" >&2
    exit 1
fi

# A get against the recovered session must see the pre-kill put.
VALUE=$(req POST "/sessions/$ID/kv" '{"ops":[{"op":"get","key":3}]}' \
    | sed -n 's/.*"value": *\([0-9-]*\).*/\1/p')
if [ "$VALUE" != "42" ]; then
    echo "serve smoke: recovered session returned value $VALUE for key 3, want 42" >&2
    exit 1
fi

# Fresh sessions on the restarted daemon: a small verified load run —
# every digest must match a standalone replay of the same stream.
/tmp/jm-load-smoke -addr "$ADDR" -sessions 4 -requests 24 -batch 4 \
    -nodes 4 -keys 16 -gateways 2 -conc 4 -out - > "$DIR/load.json" 2> "$DIR/load.log" \
    || { cat "$DIR/load.log" >&2; exit 1; }
grep -q '"verified_sessions": 4' "$DIR/load.json" \
    || { echo "serve smoke: load run did not verify 4/4 sessions" >&2; cat "$DIR/load.json" >&2; exit 1; }

kill -TERM "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
echo "serve smoke: session survived SIGKILL byte-identical ($DIGEST_AFTER); load run verified 4/4"
