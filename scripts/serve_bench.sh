#!/bin/sh
# Full serving benchmark: boot jm-serve, drive 32 concurrent sessions
# through 10k+ kv requests with jm-load, verify every session's final
# digest against a standalone replay, and write BENCH_serve.json
# (append-only history, like BENCH_engine.json). docs/SERVE.md.
set -eu
cd "$(dirname "$0")/.."

ADDR=${ADDR:-127.0.0.1:8094}
LABEL=${LABEL:-}
OUT=${OUT:-BENCH_serve.json}
DIR=$(mktemp -d /tmp/jm-serve-bench.XXXXXX)
PID=""
trap 'kill -9 $PID 2>/dev/null || true; rm -rf "$DIR"' EXIT

go build -o /tmp/jm-serve-bench-bin ./cmd/jm-serve
go build -o /tmp/jm-load-bench-bin ./cmd/jm-load

/tmp/jm-serve-bench-bin -addr "$ADDR" -dir "$DIR/state" -max-resident 12 > "$DIR/serve.log" 2>&1 &
PID=$!
i=0
until curl -sS -o /dev/null "http://$ADDR/v1/healthz" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 500 ] && { echo "serve bench: daemon did not come up" >&2; exit 1; }
    sleep 0.02
done

/tmp/jm-load-bench-bin -addr "$ADDR" -sessions 32 -requests 10048 -batch 4 \
    -nodes 8 -keys 32 -gateways 4 -conc 8 ${LABEL:+-label "$LABEL"} -out "$OUT"

kill -TERM "$PID"
wait "$PID" 2>/dev/null || true
echo "serve bench: wrote $OUT"
