#!/bin/sh
# Crash-recovery smoke: SIGKILL a checkpointing jm-chaos run once its
# first periodic checkpoint is on disk, then resume from the surviving
# file in a fresh process. The resumed run's final state digest must be
# byte-identical to an uninterrupted run's — the end-to-end proof that
# the checkpoint file carries the complete simulation state across a
# hard process death (docs/CHECKPOINT.md).
set -eu
cd "$(dirname "$0")/.."

BIN=${BIN:-/tmp/jm-chaos-ckpt-smoke}
CKPT=$(mktemp -u /tmp/jm-ckpt-smoke.XXXXXX)
trap 'rm -f "$CKPT"' EXIT

go build -o "$BIN" ./cmd/jm-chaos
ARGS="-workload lcs -seed 11 -reliable"

# Uninterrupted reference digest.
WANT=$("$BIN" $ARGS | grep -o 'digest=[0-9a-f]*' | head -n 1)
[ -n "$WANT" ] || { echo "ckpt smoke: no reference digest" >&2; exit 1; }

# Checkpointing run, SIGKILLed after the first periodic checkpoint
# lands plus a small run-dependent extra delay (no clean shutdown — the
# process dies exactly as in a power cut).
"$BIN" $ARGS -ckpt "$CKPT" -ckpt-every 2000 > /dev/null &
PID=$!
i=0
while [ ! -f "$CKPT" ]; do
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "ckpt smoke: child exited before writing a checkpoint" >&2
        exit 1
    fi
    i=$((i + 1))
    if [ "$i" -gt 3000 ]; then
        echo "ckpt smoke: timeout waiting for a checkpoint" >&2
        kill -9 "$PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.01
done
sleep "0.0$(($$ % 5))"
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true

# A fresh process resumes from whatever survived the kill.
GOT=$("$BIN" $ARGS -ckpt "$CKPT" -resume | grep -o 'digest=[0-9a-f]*' | head -n 1)
if [ "$GOT" != "$WANT" ]; then
    echo "ckpt smoke: resumed $GOT != uninterrupted $WANT" >&2
    exit 1
fi
echo "ckpt smoke: resumed after SIGKILL; $GOT matches the uninterrupted run"
