module jmachine

go 1.22
