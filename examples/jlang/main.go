// Jlang demonstrates the Tuned-J-style compiler: a distributed dot
// product written in the J subset (dotprod.j), compiled to MDP code and
// run SPMD on an 8-node machine, with the result checked against Go.
//
// The same program can be driven from the command line:
//
//	go run ./cmd/jm-jc -nodes 8 -all examples/jlang/dotprod.j
package main

import (
	_ "embed"
	"fmt"
	"log"

	"jmachine/internal/bench"
	"jmachine/internal/jlang"
	"jmachine/internal/machine"
	"jmachine/internal/rt"
)

//go:embed dotprod.j
var src string

func main() {
	const nodes = 8
	c, err := jlang.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	m, err := machine.New(machine.GridForNodes(nodes), c.Program)
	if err != nil {
		log.Fatal(err)
	}
	rt.Attach(m, rt.Info(c.Program), rt.DefaultPolicy())
	rt.StartAll(m, c.Program, "main")
	if err := m.RunUntilHalt(0, 50_000_000); err != nil {
		log.Fatal(err)
	}

	got, _ := m.Nodes[0].Mem.Read(c.Globals["acc"])
	want := int32(0)
	for id := 0; id < nodes; id++ {
		for i := int32(0); i < 256; i++ {
			want += (i + int32(id)) * (2*i + 1)
		}
	}
	fmt.Printf("dot product over %d nodes = %d (reference %d)\n", nodes, got.Data(), want)
	fmt.Printf("ran %d compiled instructions in %d cycles (%.3f ms at 12.5 MHz)\n",
		m.Stats.Instrs(), m.Cycle(), bench.Micros(float64(m.Cycle()))/1000)
	if got.Data() != want {
		log.Fatal("MISMATCH")
	}
}
