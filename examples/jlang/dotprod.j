// Distributed dot product in the J subset: every node computes its
// local partial from arrays in external memory, then the partials are
// combined at node 0 through remote invocations — the Tuned-J style of
// the paper's applications.

var a[256] @emem;
var b[256] @emem;
var partial;
var acc;
var replies;
var done;

handler deliver(v) {
	acc = acc + v;
	replies = replies + 1;
	if (replies == nodes()) {
		done = 1;
		halt();
	}
	suspend();
}

func fill() {
	var i;
	i = 0;
	while (i < 256) {
		a[i] = i + myid();
		b[i] = 2 * i + 1;
		i = i + 1;
	}
}

func dot() {
	var i;
	var sum;
	i = 0;
	sum = 0;
	while (i < 256) {
		sum = sum + a[i] * b[i];
		i = i + 1;
	}
	return sum;
}

func main() {
	fill();
	partial = dot();
	send(nodeaddr(0), deliver, partial);
	suspend();
}
