// Radixsort runs the paper's most communication-intensive application —
// every key travels as a 3-word message during every reorder phase —
// and prints the statistics the paper uses to characterize it: the
// speedup regimes, the write-handler thread class, and the send-fault
// skew caused by the router's fixed-priority arbitration.
package main

import (
	"fmt"
	"log"

	"jmachine/internal/apps/radix"
	"jmachine/internal/bench"
	"jmachine/internal/stats"
)

func main() {
	params := radix.Params{Keys: 4096, Bits: 28, Seed: 7}
	want := radix.Reference(params.Input())

	fmt.Printf("sorting %d 28-bit keys, 4 bits per digit (%d passes)\n\n",
		params.Keys, params.Digits())
	fmt.Println("nodes  cycles    ms      speedup  sendflts  skew")

	var base int64
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		r, err := radix.Run(n, params)
		if err != nil {
			log.Fatal(err)
		}
		for i := range want {
			if r.Sorted[i] != want[i] {
				log.Fatalf("output mismatch at %d nodes", n)
			}
		}
		if n == 1 {
			base = r.Cycles
		}
		fmt.Printf("%5d  %8d  %-6.2f  %-7.2f  %-8d  %.1f\n",
			n, r.Cycles, bench.Micros(float64(r.Cycles))/1000,
			float64(base)/float64(r.Cycles),
			r.M.Stats.SendFaults(), r.M.Stats.SendFaultSkew())
		if n == 8 {
			h := r.M.Stats.HandlerTotal(r.P.Entry(radix.LWrite))
			bd := r.M.Stats.Breakdown()
			fmt.Printf("       at 8 nodes: %d WriteData threads of %.1f instructions, "+
				"comm share %.1f%%\n",
				h.Invocations, float64(h.Instrs)/float64(h.Invocations),
				100*bd[stats.CatComm])
		}
	}
	fmt.Println("\npaper: performance limited by global bandwidth; the only application")
	fmt.Println("that stresses the fine-grain communication mechanisms")
}
