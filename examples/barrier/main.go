// Barrier demonstrates the runtime's scan-style barrier library (the
// Table 3 experiment): log₂(N) waves of priority-1 messages in a
// butterfly pattern, with each wave's arrival matched to its counter by
// the hardware dispatch mechanism.
package main

import (
	"fmt"
	"log"

	"jmachine/internal/bench"
)

func main() {
	fmt.Println("software barrier time vs machine size (8 barriers averaged)")
	fmt.Println("nodes  cycles  µs      µs/wave")
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		cycles, err := bench.MeasureBarrier(n, 8, 0)
		if err != nil {
			log.Fatal(err)
		}
		waves := 0
		for v := 1; v < n; v *= 2 {
			waves++
		}
		us := bench.Micros(cycles)
		fmt.Printf("%5d  %6.0f  %-6.2f  %.2f\n", n, cycles, us, us/float64(waves))
	}
	fmt.Println("\npaper: 4.4 µs at 2 nodes rising to 27.4 µs at 512 —")
	fmt.Println("one to two orders of magnitude faster than contemporary machines")
}
