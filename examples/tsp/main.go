// TSP runs the paper's Concurrent-Smalltalk-style branch-and-bound
// benchmark and prints the behaviour the paper highlights: pruning can
// produce super-linear speedup (the multi-node version finds better
// bounds sooner), dynamic task redistribution keeps idle time far below
// N-Queens, and the object runtime's xlate traffic is enormous.
package main

import (
	"fmt"
	"log"

	"jmachine/internal/apps/tsp"
	"jmachine/internal/stats"
)

func main() {
	params := tsp.Params{Cities: 10, Seed: 21}
	want := tsp.Reference(params.Matrix())
	fmt.Printf("branch-and-bound TSP, %d cities (optimal tour = %d)\n\n", params.Cities, want)
	fmt.Println("nodes  cycles    speedup  idle%   xlates   xlates/instr")

	var base int64
	for _, n := range []int{1, 2, 4, 8, 16} {
		r, err := tsp.Run(n, params)
		if err != nil {
			log.Fatal(err)
		}
		if r.Best != want {
			log.Fatalf("%d nodes found %d, want %d", n, r.Best, want)
		}
		if n == 1 {
			base = r.Cycles
		}
		var xlates uint64
		for _, nd := range r.M.Nodes {
			xlates += nd.Xl.Stats().Hits + nd.Xl.Stats().Misses
		}
		bd := r.M.Stats.Breakdown()
		fmt.Printf("%5d  %8d  %-7.2f  %-5.1f  %-8d %.3f\n",
			n, r.Cycles, float64(base)/float64(r.Cycles),
			100*bd[stats.CatIdle], xlates,
			float64(xlates)/float64(r.M.Stats.Instrs()))
	}
	fmt.Println("\npaper: super-linear speedup on small machines from pruning;")
	fmt.Println("3.8% idle (vs 15% for N-Queens) thanks to work redistribution;")
	fmt.Println("5.1e8 xlates against 2.8e9 user instructions at full scale")
}
