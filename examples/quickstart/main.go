// Quickstart: assemble a tiny message handler, boot a 2×2×2 J-Machine,
// and exchange a message between two nodes.
//
// The program demonstrates the machine's three headline mechanisms in a
// dozen lines of assembly: SEND instructions inject a message, the
// network delivers it, and the destination dispatches a task from the
// message header in four cycles.
package main

import (
	"fmt"
	"log"

	"jmachine"
	"jmachine/internal/asm"
	"jmachine/internal/isa"
	"jmachine/internal/rt"
)

func main() {
	b := jmachine.NewProgram()

	// Node 0's driver: send [header, 41, 1] to the node whose router
	// address was preloaded at AppBase, then stop.
	b.Label("main").
		MoveI(isa.A0, rt.AppBase).
		Send(asm.Mem(isa.A0, 0)). // destination word
		MoveHdr(isa.R1, "adder", 3).
		Send(asm.R(isa.R1)).
		MoveI(isa.R0, 41).
		Send2E(isa.R0, asm.Imm(1)).
		Suspend()

	// The handler: add the two message words, store the result, halt.
	b.Label("adder").
		Move(isa.R0, asm.Mem(isa.A3, 1)).
		Add(isa.R0, asm.Mem(isa.A3, 2)).
		MoveI(isa.A0, rt.AppBase).
		St(isa.R0, asm.Mem(isa.A0, 0)).
		Halt()

	rt.BuildLib(b)
	prog := b.MustAssemble()

	m := jmachine.MustNew(jmachine.Cube(2), prog)
	jmachine.AttachRuntime(m, prog)

	target := m.NumNodes() - 1 // opposite corner
	m.Nodes[0].Mem.Write(rt.AppBase, m.Net.NodeWord(target))
	m.Nodes[0].StartBackground(prog.Entry("main"))

	if err := m.RunUntilHalt(target, 10_000); err != nil {
		log.Fatal(err)
	}
	result, _ := m.Nodes[target].Mem.Read(rt.AppBase)
	// The word package renders tagged values like "int:42".
	fmt.Printf("node %d computed %s in %d cycles (%.2f µs at 12.5 MHz)\n",
		target, result, m.Cycle(), jmachine.CyclesToMicros(float64(m.Cycle())))
}
