// Futures demonstrates the MDP's presence-tag synchronization: a
// consumer thread reads a slot before the value exists, faults on the
// cfut tag, and is suspended by system software; a remote producer
// later performs a synchronizing write that delivers the value and
// restarts the consumer — the hardware full/empty-bit pattern Table 2
// measures.
package main

import (
	"fmt"
	"log"

	"jmachine"
	"jmachine/internal/asm"
	"jmachine/internal/isa"
	"jmachine/internal/rt"
	"jmachine/internal/word"
)

const slot = rt.AppBase + 8 // the not-yet-computed value lives here

func main() {
	b := jmachine.NewProgram()

	// Node 0's consumer: read the slot (faulting and suspending if the
	// value has not arrived), then square it and halt.
	b.Label("consumer").
		MoveI(isa.A0, slot).
		Move(isa.R0, asm.Mem(isa.A0, 0)). // cfut fault -> suspend
		Mul(isa.R0, asm.R(isa.R0)).
		MoveI(isa.A1, rt.AppBase).
		St(isa.R0, asm.Mem(isa.A1, 0)).
		Halt()

	// Node 1's producer: compute for a while, then send the value to
	// node 0's writer handler.
	b.Label("producer").
		MoveI(isa.R2, 50). // simulated computation
		Label("work").
		Sub(isa.R2, asm.Imm(1)).
		Bt(isa.R2, "work").
		MoveI(isa.R1, 0).
		Wtag(isa.R1, asm.Imm(int32(word.TagNode))). // node (0,0,0)
		Send(asm.R(isa.R1)).
		MoveHdr(isa.R1, "deliver", 2).
		Send(asm.R(isa.R1)).
		SendE(asm.Imm(6)). // the value
		Suspend()

	// Node 0's delivery handler: the synchronizing write. Its fast path
	// is 4 cycles; finding a waiter triggers the runtime restart.
	b.Label("deliver").
		MoveI(isa.A0, slot).
		Move(isa.R0, asm.Mem(isa.A3, 1)).
		Bsr(isa.R3, rt.LWriteSync).
		Suspend()

	rt.BuildLib(b)
	prog := b.MustAssemble()

	m := jmachine.MustNew(jmachine.Grid(2, 1, 1), prog)
	r := jmachine.AttachRuntime(m, prog)
	m.Nodes[0].Mem.FillCfut(slot, 1) // mark the slot "awaiting a value"
	m.Nodes[0].StartBackground(prog.Entry("consumer"))
	m.Nodes[1].StartBackground(prog.Entry("producer"))

	// Walk the run in phases to narrate what happened.
	m.StepN(20)
	fmt.Printf("t=%3d: consumer suspended on the cfut slot: %d saved thread(s)\n",
		m.Cycle(), r.SavedThreads(0))
	if err := m.RunUntilHalt(0, 10_000); err != nil {
		log.Fatal(err)
	}
	got, _ := m.Nodes[0].Mem.Read(rt.AppBase)
	fmt.Printf("t=%3d: producer delivered 6; restarted consumer computed 6² = %s\n",
		m.Cycle(), got)
	st := m.Stats.Nodes[0]
	fmt.Printf("cfut faults: %d (suspension policy: %d-cycle save, %d-cycle restore)\n",
		st.CfutFaults, rt.DefaultPolicy().SaveCycles, rt.DefaultPolicy().RestoreCycles)
}
