// Pingpong reproduces the Figure 2 experiment interactively: round-trip
// latency of a null RPC as a function of the distance travelled, on an
// unloaded 8×8×8 machine.
//
// The output shows the two structural facts the paper highlights: a
// fixed base latency (network interface plus two thread dispatches) and
// a slope of exactly two cycles per hop of distance.
package main

import (
	"fmt"
	"log"

	"jmachine/internal/bench"
)

func main() {
	fmt.Println("round-trip latency of a null RPC on an unloaded 8x8x8 J-Machine")
	fmt.Println("hops  cycles  µs")
	var prev int64
	for d := 0; d <= 21; d += 3 {
		// Pick a target at Manhattan distance d from node 0.
		x := min(d, 7)
		y := min(d-x, 7)
		z := d - x - y
		target := x + 8*(y+8*z)
		cycles, err := bench.Ping(8, target, 0)
		if err != nil {
			log.Fatal(err)
		}
		slope := ""
		if prev != 0 {
			slope = fmt.Sprintf("  (+%d over 3 hops)", cycles-prev)
		}
		fmt.Printf("%4d  %6d  %.2f%s\n", d, cycles, bench.Micros(float64(cycles)), slope)
		prev = cycles
	}
	fmt.Println("\npaper: 43-cycle base, 2 cycles/hop round trip; corner-to-corner reads < 98 cycles")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
