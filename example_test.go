package jmachine_test

import (
	"fmt"

	"jmachine"
	"jmachine/internal/asm"
	"jmachine/internal/isa"
	"jmachine/internal/jlang"
	"jmachine/internal/machine"
	"jmachine/internal/rt"
	"jmachine/internal/word"
)

// Example demonstrates the quick-start path: assemble a handler, boot a
// machine, send it a message.
func Example() {
	b := jmachine.NewProgram()
	b.Label("main").
		MoveI(isa.A0, rt.AppBase).
		Send(asm.Mem(isa.A0, 0)). // destination preloaded by the host
		MoveHdr(isa.R1, "double", 2).
		Send2E(isa.R1, asm.Imm(21)).
		Suspend()
	b.Label("double").
		Move(isa.R0, asm.Mem(isa.A3, 1)).
		Add(isa.R0, asm.R(isa.R0)).
		MoveI(isa.A0, rt.AppBase).
		St(isa.R0, asm.Mem(isa.A0, 0)).
		Halt()
	rt.BuildLib(b)
	prog := b.MustAssemble()

	m := jmachine.MustNew(jmachine.Grid(2, 1, 1), prog)
	jmachine.AttachRuntime(m, prog)
	m.Nodes[0].Mem.Write(rt.AppBase, m.Net.NodeWord(1))
	m.Nodes[0].StartBackground(prog.Entry("main"))
	if err := m.RunUntilHalt(1, 1000); err != nil {
		panic(err)
	}
	result, _ := m.Nodes[1].Mem.Read(rt.AppBase)
	fmt.Println("node 1 computed", result.Data())
	// Output: node 1 computed 42
}

// ExampleCompile shows the Tuned-J-style compiler: per-node C-like code
// with the machine's mechanisms as builtins.
func ExampleCompile() {
	c, err := jlang.Compile(`
		var out;
		func fib(n) {
			var a; var b; var t; var i;
			a = 0; b = 1; i = 0;
			while (i < n) { t = a + b; a = b; b = t; i = i + 1; }
			return a;
		}
		func main() { out = fib(10); halt(); }
	`)
	if err != nil {
		panic(err)
	}
	m := machine.MustNew(machine.Grid(1, 1, 1), c.Program)
	rt.Attach(m, rt.Info(c.Program), rt.DefaultPolicy())
	rt.StartNode(m, c.Program, 0, "main")
	if err := m.RunUntilHalt(0, 100000); err != nil {
		panic(err)
	}
	out, _ := m.Nodes[0].Mem.Read(c.Globals["out"])
	fmt.Println("fib(10) =", out.Data())
	// Output: fib(10) = 55
}

// ExampleWord shows the tagged-word representation at the heart of the
// MDP's synchronization mechanisms.
func ExampleWord() {
	v := word.Int(7)
	slot := word.Cfut(0) // a slot awaiting its value
	fmt.Println(v, "present:", v.IsPresent())
	fmt.Println(slot, "present:", slot.IsPresent())
	hdr := word.MsgHeader(128, 3)
	fmt.Println("header targets ip", hdr.HeaderIP(), "length", hdr.HeaderLen())
	// Output:
	// int:7 present: true
	// cfut:0 present: false
	// header targets ip 128 length 3
}
