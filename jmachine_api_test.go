package jmachine_test

import (
	"testing"

	"jmachine"
	"jmachine/internal/asm"
	"jmachine/internal/isa"
	"jmachine/internal/rt"
	"jmachine/internal/word"
)

// TestPublicFacade exercises the README quick-start path end to end:
// build a program through the façade, boot a machine, exchange a
// message, and convert cycles to microseconds.
func TestPublicFacade(t *testing.T) {
	b := jmachine.NewProgram()
	b.Label("main").
		MoveI(isa.A0, rt.AppBase).
		Send(asm.Mem(isa.A0, 0)).
		MoveHdr(isa.R1, "adder", 3).
		Send(asm.R(isa.R1)).
		MoveI(isa.R0, 41).
		Send2E(isa.R0, asm.Imm(1)).
		Suspend()
	b.Label("adder").
		Move(isa.R0, asm.Mem(isa.A3, 1)).
		Add(isa.R0, asm.Mem(isa.A3, 2)).
		MoveI(isa.A0, rt.AppBase).
		St(isa.R0, asm.Mem(isa.A0, 0)).
		Halt()
	rt.BuildLib(b)
	prog := b.MustAssemble()

	m := jmachine.MustNew(jmachine.Cube(2), prog)
	jmachine.AttachRuntime(m, prog)
	target := m.NumNodes() - 1
	m.Nodes[0].Mem.Write(rt.AppBase, m.Net.NodeWord(target))
	m.Nodes[0].StartBackground(prog.Entry("main"))
	if err := m.RunUntilHalt(target, 10_000); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Nodes[target].Mem.Read(rt.AppBase)
	if got != word.Int(42) {
		t.Fatalf("result = %v", got)
	}
	if us := jmachine.CyclesToMicros(125); us != 10 {
		t.Errorf("CyclesToMicros(125) = %v", us)
	}
	if jmachine.ClockHz != 12.5e6 {
		t.Errorf("ClockHz = %v", jmachine.ClockHz)
	}
}

func TestFacadeGrids(t *testing.T) {
	b := jmachine.NewProgram()
	b.Label("main").Halt()
	p := b.MustAssemble()
	if m := jmachine.MustNew(jmachine.Grid(4, 3, 2), p); m.NumNodes() != 24 {
		t.Errorf("Grid(4,3,2) = %d nodes", m.NumNodes())
	}
	if m := jmachine.MustNew(jmachine.GridForNodes(48), p); m.NumNodes() != 48 {
		t.Errorf("GridForNodes(48) = %d nodes", m.NumNodes())
	}
	if _, err := jmachine.New(jmachine.Cube(2), nil); err == nil {
		t.Error("nil program accepted")
	}
}
